//! Ground-truth accuracy on synthesized corpora: the open-ended
//! generator behind `zeroer gen` and `bench_scale` emits *exact* cluster
//! labels, so — unlike the paper-profile e2e tests, where truth is
//! itself generated per profile — the F1 here is against an answer known
//! by construction: every duplicate is a corrupted copy of a tracked
//! base entity. Mirrors `streaming_e2e.rs`/`linkage_e2e.rs`: streaming
//! ingest of the 30 % tail must land within 2 F1 points of the
//! full-batch fit, for both the dedup and linkage corpus shapes.

use std::collections::HashSet;
use zeroer_datagen::{generate_dedup, generate_linkage, CorpusSpec};
use zeroer_eval::clusters::{clusters_from_pairs, pairwise_cluster_f1};
use zeroer_stream::{LinkPipeline, Side, StreamOptions, StreamPipeline};
use zeroer_tabular::{Record, Table};

fn spec(seed: u64) -> CorpusSpec {
    CorpusSpec {
        scale: 0.02, // 400 records: full EM fits stay test-sized
        seed,
        ..CorpusSpec::default()
    }
}

fn prefix_table(t: &Table, n: usize) -> Table {
    let mut out = Table::new("prefix", t.schema().clone());
    for r in t.records().iter().take(n) {
        out.push(r.clone());
    }
    out
}

fn pair_f1(clusters: &[Vec<usize>], truth: &[(usize, usize)]) -> f64 {
    pairwise_cluster_f1(clusters, &clusters_from_pairs(truth)).f1()
}

#[test]
fn dedup_streaming_f1_stays_within_two_points_of_batch() {
    let corpus = generate_dedup(&spec(42)).expect("valid spec");
    let truth = corpus.truth_pairs();
    let table = &corpus.table;
    let opts = StreamOptions::default();

    let (batch, _) = StreamPipeline::bootstrap(table, opts.clone()).expect("batch fit");
    let batch_f1 = pair_f1(&batch.clusters(), &truth);

    let cut = table.len() * 7 / 10;
    let (mut stream, report) =
        StreamPipeline::bootstrap(&prefix_table(table, cut), opts).expect("bootstrap fit");
    assert!(report.em_iterations >= 1, "bootstrap runs EM");
    let tail: Vec<Record> = table.records()[cut..].to_vec();
    for chunk in tail.chunks(16) {
        stream.ingest_batch(chunk.to_vec());
    }
    assert_eq!(stream.store().len(), table.len());
    let stream_f1 = pair_f1(&stream.clusters(), &truth);

    assert!(
        batch_f1 > 0.9,
        "batch fit must recover the controlled duplicates, got F1 {batch_f1}"
    );
    assert!(
        batch_f1 - stream_f1 <= 0.02,
        "streaming F1 {stream_f1} must be within 2 points of batch F1 {batch_f1}"
    );
}

#[test]
fn dedup_accuracy_is_stable_across_corpus_seeds() {
    for seed in [7, 19] {
        let corpus = generate_dedup(&spec(seed)).expect("valid spec");
        let truth = corpus.truth_pairs();
        let cut = corpus.table.len() * 7 / 10;
        let (mut stream, _) =
            StreamPipeline::bootstrap(&prefix_table(&corpus.table, cut), StreamOptions::default())
                .expect("bootstrap fit");
        stream.ingest_batch(corpus.table.records()[cut..].to_vec());
        let f1 = pair_f1(&stream.clusters(), &truth);
        assert!(f1 > 0.9, "seed {seed}: streaming F1 {f1} vs exact truth");
    }
}

/// F1 of predicted cross links against ground-truth matches, both in the
/// combined numbering (left records first) — same metric as
/// `linkage_e2e.rs`.
fn cross_f1(links: &[(usize, usize)], truth: &HashSet<(usize, usize)>) -> f64 {
    let pred: HashSet<(usize, usize)> = links.iter().copied().collect();
    let tp = pred.intersection(truth).count() as f64;
    if pred.is_empty() || truth.is_empty() {
        return 0.0;
    }
    let precision = tp / pred.len() as f64;
    let recall = tp / truth.len() as f64;
    if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    }
}

#[test]
fn linkage_streaming_f1_stays_within_two_points_of_batch() {
    let corpus = generate_linkage(&spec(42)).expect("valid spec");
    let nl = corpus.left.len();
    let truth: HashSet<(usize, usize)> = corpus.matches.iter().map(|&(l, r)| (l, nl + r)).collect();
    assert!(!truth.is_empty(), "the spec guarantees matches exist");

    let (batch, _) = LinkPipeline::bootstrap(&corpus.left, &corpus.right, StreamOptions::default())
        .expect("batch fit");
    let batch_f1 = cross_f1(&batch.cross_links(), &truth);

    // Stream the last 30 % of the right table; ingest order preserves
    // the combined numbering, so links stay comparable to the same
    // truth.
    let cut = corpus.right.len() * 7 / 10;
    let (mut stream, _) = LinkPipeline::bootstrap(
        &corpus.left,
        &prefix_table(&corpus.right, cut),
        StreamOptions::default(),
    )
    .expect("bootstrap fit");
    let tail: Vec<Record> = corpus.right.records()[cut..].to_vec();
    for chunk in tail.chunks(16) {
        stream.ingest_batch(chunk.to_vec(), Side::Right);
    }
    assert_eq!(stream.len(), nl + corpus.right.len());
    let stream_f1 = cross_f1(&stream.cross_links(), &truth);

    assert!(
        batch_f1 > 0.9,
        "batch linkage must recover the one-to-one matches, got F1 {batch_f1}"
    );
    assert!(
        batch_f1 - stream_f1 <= 0.02,
        "streaming linkage F1 {stream_f1} must be within 2 points of batch F1 {batch_f1}"
    );
}
