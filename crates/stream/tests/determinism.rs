//! Parallel-ingest determinism.
//!
//! The tentpole guarantee of the parallel ingest path: for ANY thread
//! count, [`StreamPipeline::ingest_batch_parallel`] produces outcomes
//! bit-identical to sequential [`StreamPipeline::ingest`] — same
//! candidate counts, same match lists with exactly equal posteriors (not
//! within-epsilon: the same f64 bits), same cluster assignments. Also
//! covers `seed_base`: replaying persisted bootstrap decisions must
//! reproduce the in-process bootstrap state exactly.

use proptest::prelude::*;
use zeroer_datagen::profiles::rest_fz;
use zeroer_datagen::{all_profiles, generate, generate_dedup, CorpusSpec};
use zeroer_stream::{IngestOutcome, PipelineSnapshot, StreamOptions, StreamPipeline};
use zeroer_tabular::csv::write_table;
use zeroer_tabular::{Record, Table};

/// Bootstrap/stream split of a generated dedup table.
fn split_dataset(profile_idx: usize, scale: f64, seed: u64) -> (Table, Vec<Record>) {
    let profiles = all_profiles();
    let ds = generate(&profiles[profile_idx % profiles.len()], scale, seed);
    let (table, _) = ds.dedup_table();
    let cut = (table.len() * 7 / 10).max(4);
    let mut boot = Table::new("boot", table.schema().clone());
    for r in table.records().iter().take(cut) {
        boot.push(r.clone());
    }
    let tail: Vec<Record> = table.records()[cut..].to_vec();
    (boot, tail)
}

/// A cold pipeline restored from `snap` and seeded with the bootstrap
/// records' persisted decisions.
fn cold_pipeline(snap: &PipelineSnapshot, boot: &Table) -> StreamPipeline {
    let mut p = StreamPipeline::from_snapshot(snap, StreamOptions::default().threshold)
        .expect("snapshot restores");
    p.seed_base(boot).expect("bootstrap decisions replay");
    p
}

fn assert_outcomes_identical(seq: &[IngestOutcome], par: &[IngestOutcome], threads: usize) {
    assert_eq!(seq.len(), par.len());
    for (s, p) in seq.iter().zip(par) {
        assert_eq!(s.index, p.index, "threads={threads}");
        assert_eq!(s.candidates, p.candidates, "threads={threads}");
        assert_eq!(s.cluster, p.cluster, "threads={threads}");
        assert_eq!(
            s.matches.len(),
            p.matches.len(),
            "threads={threads} record={}",
            s.index
        );
        for ((sc, sp), (pc, pp)) in s.matches.iter().zip(&p.matches) {
            assert_eq!(sc, pc, "threads={threads} record={}", s.index);
            // Bit-identical, not within-epsilon: both paths must run the
            // exact same float operations in the exact same order.
            assert_eq!(
                sp.to_bits(),
                pp.to_bits(),
                "threads={threads} record={}: {sp} vs {pp}",
                s.index
            );
        }
    }
}

#[test]
fn parallel_ingest_is_bit_identical_across_thread_counts() {
    let (boot, tail) = split_dataset(0, 0.25, 42);
    let (live, _) = StreamPipeline::bootstrap(&boot, StreamOptions::default()).expect("bootstrap");
    let snap = live.snapshot();

    let mut seq = cold_pipeline(&snap, &boot);
    let seq_outcomes: Vec<IngestOutcome> = tail.iter().cloned().map(|r| seq.ingest(r)).collect();

    for threads in [1, 2, 3, 4, 8] {
        let mut par = cold_pipeline(&snap, &boot);
        let par_outcomes = par.ingest_batch_parallel(tail.clone(), threads);
        assert_outcomes_identical(&seq_outcomes, &par_outcomes, threads);
        assert_eq!(
            seq.clusters(),
            par.clusters(),
            "cluster assignments diverged at {threads} threads"
        );
        assert_eq!(seq.store().num_entities(), par.store().num_entities());
    }
}

#[test]
fn batched_scoring_is_bit_identical_to_scalar_across_thread_counts() {
    let (boot, tail) = split_dataset(0, 0.25, 42);
    let (live, _) = StreamPipeline::bootstrap(&boot, StreamOptions::default()).expect("bootstrap");
    let snap = live.snapshot();

    // Scalar sequential ingest is the reference everything else must
    // reproduce to the bit.
    let mut reference = cold_pipeline(&snap, &boot);
    reference.set_batched_scoring(false);
    let seq_outcomes: Vec<IngestOutcome> =
        tail.iter().cloned().map(|r| reference.ingest(r)).collect();

    for batched in [false, true] {
        for threads in [1, 2, 4] {
            let mut par = cold_pipeline(&snap, &boot);
            par.set_batched_scoring(batched);
            let par_outcomes = par.ingest_batch_parallel(tail.clone(), threads);
            assert_outcomes_identical(&seq_outcomes, &par_outcomes, threads);
            assert_eq!(
                reference.clusters(),
                par.clusters(),
                "clusters diverged: batched={batched} threads={threads}"
            );
        }
    }
}

#[test]
fn seed_base_reproduces_in_process_bootstrap() {
    let (boot, tail) = split_dataset(0, 0.25, 7);
    let (mut live, report) =
        StreamPipeline::bootstrap(&boot, StreamOptions::default()).expect("bootstrap");
    let snap = live.snapshot();
    assert_eq!(snap.bootstrap_len, boot.len());
    assert_eq!(
        snap.bootstrap_pairs.len(),
        report
            .probabilities
            .iter()
            .filter(|&&p| p > StreamOptions::default().threshold)
            .count(),
        "persisted decisions must be exactly the above-threshold pairs"
    );

    // Round-trip through JSON (what the CLI actually does).
    let reloaded = PipelineSnapshot::from_json(&snap.to_json()).expect("round-trips");
    let mut cold = cold_pipeline(&reloaded, &boot);

    // Identical cluster state — the batch decisions, not re-scored ones.
    assert_eq!(live.clusters(), cold.clusters());
    assert_eq!(live.store().num_entities(), cold.store().num_entities());

    // And identical *future* behavior: the indexes were seeded the same.
    for r in tail {
        let a = live.ingest(r.clone());
        let b = cold.ingest(r);
        assert_eq!(a.candidates, b.candidates);
        assert_eq!(a.cluster, b.cluster);
        assert_eq!(a.matches, b.matches);
    }
}

#[test]
fn seed_base_rejects_misuse() {
    let (boot, _) = split_dataset(0, 0.25, 11);
    let (live, _) = StreamPipeline::bootstrap(&boot, StreamOptions::default()).expect("bootstrap");
    let snap = live.snapshot();

    // Wrong record count.
    let mut truncated = Table::new("short", boot.schema().clone());
    truncated.push(boot.records()[0].clone());
    let mut p = StreamPipeline::from_snapshot(&snap, 0.5).unwrap();
    assert!(p.seed_base(&truncated).is_err());

    // Non-empty store.
    let mut p = StreamPipeline::from_snapshot(&snap, 0.5).unwrap();
    p.ingest(boot.records()[0].clone());
    assert!(p.seed_base(&boot).is_err());

    // No bootstrap decisions in the snapshot.
    let mut stripped = snap.clone();
    stripped.bootstrap_len = 0;
    stripped.bootstrap_pairs.clear();
    let mut p = StreamPipeline::from_snapshot(&stripped, 0.5).unwrap();
    assert!(p.seed_base(&boot).is_err());

    // Same length and schema, different records: the digest must catch
    // it — replaying merge pairs onto the wrong records would silently
    // produce wrong clusters.
    let mut reordered = Table::new("reordered", boot.schema().clone());
    for r in boot.records().iter().rev() {
        reordered.push(r.clone());
    }
    let mut p = StreamPipeline::from_snapshot(&snap, 0.5).unwrap();
    let err = p.seed_base(&reordered).expect_err("digest must mismatch");
    assert!(err.to_string().contains("does not match"), "{err}");

    // Unknown digest (legacy snapshot): length is the only check, so the
    // reordered table is accepted — documented legacy behavior.
    let mut legacy = snap.clone();
    legacy.bootstrap_digest = 0;
    let mut p = StreamPipeline::from_snapshot(&legacy, 0.5).unwrap();
    assert!(p.seed_base(&reordered).is_ok());
}

/// Bootstrap/stream split of a `CorpusSpec`-generated corpus (the
/// open-ended synthesizer behind `zeroer gen` and `bench_scale`), as
/// opposed to the paper-profile datasets the tests above use.
fn corpus_split(seed: u64) -> (Table, Vec<Record>) {
    let spec = CorpusSpec {
        scale: 0.015, // 300 records: a full EM fit stays test-sized
        seed,
        ..CorpusSpec::default()
    };
    let corpus = generate_dedup(&spec).expect("valid spec");
    let cut = (corpus.table.len() * 7 / 10).max(4);
    let mut boot = Table::new("boot", corpus.table.schema().clone());
    for r in corpus.table.records().iter().take(cut) {
        boot.push(r.clone());
    }
    let tail: Vec<Record> = corpus.table.records()[cut..].to_vec();
    (boot, tail)
}

#[test]
fn generated_corpus_is_byte_identical_per_seed() {
    // The determinism contract `zeroer gen` documents: the same spec
    // yields the same bytes — table AND ground truth — every run.
    let spec = CorpusSpec {
        scale: 0.015,
        seed: 99,
        ..CorpusSpec::default()
    };
    let a = generate_dedup(&spec).expect("valid spec");
    let b = generate_dedup(&spec).expect("valid spec");
    assert_eq!(write_table(&a.table), write_table(&b.table));
    assert_eq!(a.truth_csv(), b.truth_csv());
    assert_eq!(a.truth_pairs(), b.truth_pairs());

    let other = generate_dedup(&CorpusSpec { seed: 100, ..spec }).expect("valid spec");
    assert_ne!(
        write_table(&a.table),
        write_table(&other.table),
        "a different seed must produce a different corpus"
    );
}

#[test]
fn corpus_ingest_is_bit_identical_across_thread_counts() {
    // Downstream of generation, the synthesized corpus must flow through
    // the parallel ingest path with the same bit-exactness the paper
    // profiles get: Zipf-skewed hot tokens hit the bucket frequency cap,
    // so this exercises cap-retirement under parallelism too.
    let (boot, tail) = corpus_split(42);
    let (live, _) = StreamPipeline::bootstrap(&boot, StreamOptions::default()).expect("bootstrap");
    let snap = live.snapshot();

    let mut seq = cold_pipeline(&snap, &boot);
    let seq_outcomes: Vec<IngestOutcome> = tail.iter().cloned().map(|r| seq.ingest(r)).collect();

    for threads in [1, 2, 4] {
        let mut par = cold_pipeline(&snap, &boot);
        let par_outcomes = par.ingest_batch_parallel(tail.clone(), threads);
        assert_outcomes_identical(&seq_outcomes, &par_outcomes, threads);
        assert_eq!(
            seq.clusters(),
            par.clusters(),
            "cluster assignments diverged at {threads} threads"
        );
    }
}

proptest! {
    // Bootstrap runs a full EM fit per case, so keep the case count low;
    // the fixed-seed test above covers the thread-count sweep densely.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The determinism criterion as a property: arbitrary dataset seeds,
    /// arbitrary thread counts, identical cluster assignments.
    #[test]
    fn parallel_equals_sequential_clusters(seed in 0u64..200, threads in 2usize..9) {
        let profiles = [rest_fz()];
        let ds = generate(&profiles[0], 0.1, seed);
        let (table, _) = ds.dedup_table();
        let cut = (table.len() * 7 / 10).max(4);
        let mut boot = Table::new("boot", table.schema().clone());
        for r in table.records().iter().take(cut) {
            boot.push(r.clone());
        }
        let tail: Vec<Record> = table.records()[cut..].to_vec();
        let Ok((live, _)) = StreamPipeline::bootstrap(&boot, StreamOptions::default()) else {
            // Tiny unlucky samples can yield no candidate pairs; nothing
            // to compare then.
            return;
        };
        let snap = live.snapshot();

        let mut seq = cold_pipeline(&snap, &boot);
        let seq_outcomes: Vec<IngestOutcome> =
            tail.iter().cloned().map(|r| seq.ingest(r)).collect();

        let mut par = cold_pipeline(&snap, &boot);
        let par_outcomes = par.ingest_batch_parallel(tail, threads);

        assert_outcomes_identical(&seq_outcomes, &par_outcomes, threads);
        prop_assert_eq!(seq.clusters(), par.clusters());
    }

    /// The same property over the open-ended corpus synthesizer: any
    /// generation seed, any thread count, one byte-identical corpus in,
    /// bit-identical outcomes out.
    #[test]
    fn corpus_parallel_equals_sequential(seed in 0u64..200, threads in 2usize..5) {
        let (boot, tail) = corpus_split(seed);
        let Ok((live, _)) = StreamPipeline::bootstrap(&boot, StreamOptions::default()) else {
            return;
        };
        let snap = live.snapshot();

        let mut seq = cold_pipeline(&snap, &boot);
        let seq_outcomes: Vec<IngestOutcome> =
            tail.iter().cloned().map(|r| seq.ingest(r)).collect();

        let mut par = cold_pipeline(&snap, &boot);
        let par_outcomes = par.ingest_batch_parallel(tail, threads);

        assert_outcomes_identical(&seq_outcomes, &par_outcomes, threads);
        prop_assert_eq!(seq.clusters(), par.clusters());
    }
}
