//! End-to-end streaming **record linkage**: bootstrap the three-model
//! trainer on the left table plus 70 % of the right table, stream the
//! remaining 30 % of the right table through the frozen cross model
//! (zero EM iterations during ingest), and compare cross-pair F1 against
//! the full-batch `match_tables`-equivalent fit on the same data — the
//! linkage mirror of `streaming_e2e.rs`.

use std::collections::HashSet;
use zeroer_datagen::generate;
use zeroer_datagen::profiles::pub_da;
use zeroer_stream::{LinkPipeline, LinkSnapshot, Side, StreamOptions};
use zeroer_tabular::{Record, Table};

/// Pub-DA-style linkage workload (bibliographic titles across two
/// "catalogs"), with overlap-2 token blocking like the batch e2e uses
/// for this profile.
fn opts() -> StreamOptions {
    StreamOptions {
        min_token_overlap: 2,
        ..StreamOptions::default()
    }
}

fn prefix_table(t: &Table, n: usize) -> Table {
    let mut out = Table::new("prefix", t.schema().clone());
    for r in t.records().iter().take(n) {
        out.push(r.clone());
    }
    out
}

/// F1 of predicted cross links against ground-truth matches, both in the
/// combined numbering (left records first).
fn cross_f1(links: &[(usize, usize)], truth: &HashSet<(usize, usize)>) -> f64 {
    let pred: HashSet<(usize, usize)> = links.iter().copied().collect();
    let tp = pred.intersection(truth).count() as f64;
    if pred.is_empty() || truth.is_empty() {
        return 0.0;
    }
    let precision = tp / pred.len() as f64;
    let recall = tp / truth.len() as f64;
    if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    }
}

#[test]
fn streaming_linkage_f1_stays_within_two_points_of_batch() {
    let ds = generate(&pub_da(), 0.05, 2);
    let nl = ds.left.len();
    let truth: HashSet<(usize, usize)> = ds.matches.iter().map(|&(l, r)| (l, nl + r)).collect();

    // Full-batch reference: bootstrapping on 100 % of both tables runs
    // exactly the batch `match_tables` pipeline (three-model joint EM
    // with cross-table transitivity) and applies its decisions.
    let (batch, batch_report) =
        LinkPipeline::bootstrap(&ds.left, &ds.right, opts()).expect("batch fit");
    let batch_f1 = cross_f1(&batch.cross_links(), &truth);

    // Streaming: fit on the left table + the first 70 % of the right
    // table, then stream the remaining 30 % as right-side records.
    let cut = ds.right.len() * 7 / 10;
    let (mut stream, report) =
        LinkPipeline::bootstrap(&ds.left, &prefix_table(&ds.right, cut), opts())
            .expect("bootstrap fit");
    assert!(report.em_iterations >= 1, "bootstrap runs EM");

    let tail: Vec<Record> = ds.right.records()[cut..].to_vec();
    for chunk in tail.chunks(16) {
        let outcomes = stream.ingest_batch(chunk.to_vec(), Side::Right);
        assert_eq!(outcomes.len(), chunk.len());
    }
    assert_eq!(stream.len(), nl + ds.right.len());
    // Streamed right records live at the end of the combined numbering;
    // remap their links onto the batch numbering (left + full right) to
    // compare against the same truth. Bootstrap right record `i` sits at
    // `nl + i` in both numberings; streamed record `cut + j` sits at
    // `nl + cut + j` in both (ingest order preserves table order).
    let stream_f1 = cross_f1(&stream.cross_links(), &truth);

    assert!(
        batch_f1 > 0.8,
        "batch linkage reference must be accurate on Pub-DA, got {batch_f1}"
    );
    assert!(
        batch_f1 - stream_f1 <= 0.02,
        "streaming linkage F1 {stream_f1} must be within 2 points of batch F1 {batch_f1}"
    );
    // Sanity: the batch report agrees with the ground truth reasonably
    // well at the raw cross-label level too.
    let labelled = batch_report
        .pairs
        .iter()
        .zip(&batch_report.labels)
        .filter(|(_, &m)| m)
        .map(|(&(l, r), _)| (l, nl + r))
        .collect::<Vec<_>>();
    assert!(cross_f1(&labelled, &truth) > 0.8);
}

#[test]
fn streamed_linkage_is_bit_identical_across_thread_counts() {
    let ds = generate(&pub_da(), 0.03, 7);
    let cut = ds.right.len() * 7 / 10;
    let (live, _) = LinkPipeline::bootstrap(&ds.left, &prefix_table(&ds.right, cut), opts())
        .expect("bootstrap fit");
    let snap = live.snapshot();
    let tail: Vec<Record> = ds.right.records()[cut..].to_vec();

    let mut reference: Option<(Vec<_>, Vec<Vec<usize>>)> = None;
    for threads in [1, 2, 4] {
        let mut p = LinkPipeline::from_snapshot(&snap, 0.5).expect("restore");
        p.seed_base(&ds.left, &prefix_table(&ds.right, cut))
            .expect("seed");
        let outcomes = p.ingest_batch_parallel(tail.clone(), Side::Right, threads);
        let digest: Vec<(usize, usize, usize, Vec<(usize, u64)>)> = outcomes
            .iter()
            .map(|o| {
                (
                    o.index,
                    o.candidates,
                    o.cluster,
                    o.matches
                        .iter()
                        .map(|&(c, p)| (c, p.to_bits()))
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        let clusters = p.clusters();
        match &reference {
            None => reference = Some((digest, clusters)),
            Some((want_digest, want_clusters)) => {
                assert_eq!(
                    want_digest, &digest,
                    "threads={threads}: outcomes must be bit-identical"
                );
                assert_eq!(
                    want_clusters, &clusters,
                    "threads={threads}: clusters must be identical"
                );
            }
        }
    }
}

#[test]
fn link_snapshot_round_trips_byte_for_byte_on_real_data() {
    let ds = generate(&pub_da(), 0.03, 11);
    let (live, _) = LinkPipeline::bootstrap(&ds.left, &ds.right, opts()).expect("bootstrap");
    let snap = live.snapshot();
    let text = snap.to_json();
    let back = LinkSnapshot::from_json(&text).expect("parses");
    assert_eq!(back.linkage, snap.linkage, "models round-trip exactly");
    assert_eq!(back.pairs, snap.pairs);
    assert_eq!(back.left_digest, snap.left_digest);
    assert_eq!(back.right_digest, snap.right_digest);
    // Re-serializing the parsed form reproduces the byte stream — the
    // strongest possible exactness statement for the JSON format.
    assert_eq!(back.to_json(), text);

    // A cold pipeline from the reloaded snapshot behaves identically.
    let mut cold = LinkPipeline::from_snapshot(&back, 0.5).expect("restore");
    cold.seed_base(&ds.left, &ds.right).expect("seed");
    assert_eq!(cold.clusters(), live.clusters());
}
