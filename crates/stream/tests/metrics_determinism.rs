//! Metrics are observational only.
//!
//! The contract of the `zeroer-obs` instrumentation: pipelines produce
//! bit-identical outcomes — candidate counts, match posteriors (exact
//! f64 bits), cluster assignments, compaction reports and serialized
//! snapshots — with metrics on, off, or contended across worker
//! threads. Each configuration here replays the same bootstrap
//! snapshot through ingest → retract → compact and the full observable
//! state is compared against a metrics-on single-thread reference.

use zeroer_datagen::generate;
use zeroer_datagen::profiles::rest_fz;
use zeroer_stream::{
    IngestOutcome, LinkPipeline, PipelineSnapshot, Side, StreamOptions, StreamPipeline,
};
use zeroer_tabular::{Record, Table};

/// Bootstrap/stream split of a generated dedup table.
fn split(scale: f64, seed: u64) -> (Table, Vec<Record>) {
    let ds = generate(&rest_fz(), scale, seed);
    let (table, _) = ds.dedup_table();
    let cut = (table.len() * 7 / 10).max(4);
    let mut boot = Table::new("boot", table.schema().clone());
    for r in table.records().iter().take(cut) {
        boot.push(r.clone());
    }
    let tail: Vec<Record> = table.records()[cut..].to_vec();
    (boot, tail)
}

/// Outcomes with posteriors reduced to bits, so equality is exact
/// rather than within-epsilon.
fn digest_outcomes(outcomes: &[IngestOutcome]) -> Vec<(usize, usize, usize, Vec<(usize, u64)>)> {
    outcomes
        .iter()
        .map(|o| {
            (
                o.index,
                o.candidates,
                o.cluster,
                o.matches.iter().map(|&(i, p)| (i, p.to_bits())).collect(),
            )
        })
        .collect()
}

/// Everything one run observably produces.
#[derive(Debug, PartialEq)]
struct RunDigest {
    outcomes: Vec<(usize, usize, usize, Vec<(usize, u64)>)>,
    clusters: Vec<Vec<usize>>,
    bytes_reclaimed: usize,
    snapshot_json: String,
}

/// Restore → seed → parallel ingest → retract every 5th record →
/// compact, under the given metrics flag and thread count.
fn run_stream(
    snap: &PipelineSnapshot,
    boot: &Table,
    tail: &[Record],
    metrics: bool,
    threads: usize,
) -> RunDigest {
    let mut p = StreamPipeline::from_snapshot(snap, StreamOptions::default().threshold)
        .expect("snapshot restores");
    p.set_metrics(metrics);
    p.seed_base(boot).expect("bootstrap decisions replay");
    let outcomes = p.ingest_batch_parallel(tail.to_vec(), threads);
    let victims: Vec<usize> = (0..p.len()).filter(|i| i % 5 == 0).collect();
    for &v in &victims {
        p.retract(v).expect("live record");
    }
    let report = p.compact();
    RunDigest {
        outcomes: digest_outcomes(&outcomes),
        clusters: p.clusters(),
        bytes_reclaimed: report.bytes_reclaimed(),
        snapshot_json: p.snapshot().to_json(),
    }
}

fn assert_digests_equal(reference: &RunDigest, got: &RunDigest, label: &str) {
    assert_eq!(reference.outcomes, got.outcomes, "{label}: outcomes");
    assert_eq!(reference.clusters, got.clusters, "{label}: clusters");
    assert_eq!(
        reference.bytes_reclaimed, got.bytes_reclaimed,
        "{label}: compaction reclaim"
    );
    assert_eq!(
        reference.snapshot_json, got.snapshot_json,
        "{label}: serialized snapshot"
    );
}

#[test]
fn stream_metrics_flag_and_threads_never_change_results() {
    let (boot, tail) = split(0.15, 42);
    let (live, _) = StreamPipeline::bootstrap(&boot, StreamOptions::default()).expect("bootstrap");
    let snap = live.snapshot();
    drop(live);

    let reference = run_stream(&snap, &boot, &tail, true, 1);
    assert!(
        !reference.outcomes.is_empty(),
        "the split must leave records to stream"
    );
    for metrics in [true, false] {
        for threads in [1usize, 2, 4] {
            let got = run_stream(&snap, &boot, &tail, metrics, threads);
            assert_digests_equal(
                &reference,
                &got,
                &format!("metrics={metrics} threads={threads}"),
            );
        }
    }
}

#[test]
fn global_metrics_disable_is_observational_too() {
    // `zeroer_obs::set_enabled(false)` (the process-wide kill switch,
    // distinct from the per-pipeline `StreamOptions::metrics`) must
    // also leave results untouched. Flipping the global flag only
    // suppresses recording; no test in this binary asserts recorded
    // metric values, so this is safe under parallel test threads.
    let (boot, tail) = split(0.1, 7);
    let (live, _) = StreamPipeline::bootstrap(&boot, StreamOptions::default()).expect("bootstrap");
    let snap = live.snapshot();
    drop(live);

    let reference = run_stream(&snap, &boot, &tail, true, 2);
    zeroer_obs::set_enabled(false);
    let got = run_stream(&snap, &boot, &tail, true, 2);
    zeroer_obs::set_enabled(true);
    assert_digests_equal(&reference, &got, "global disable");
}

#[test]
fn link_metrics_flag_and_threads_never_change_results() {
    let ds = generate(&rest_fz(), 0.1, 11);
    let cut = (ds.right.len() * 7 / 10).max(2);
    let mut boot_right = Table::new("right-boot", ds.right.schema().clone());
    for r in ds.right.records().iter().take(cut) {
        boot_right.push(r.clone());
    }
    let tail: Vec<Record> = ds.right.records()[cut..].to_vec();
    let (live, _) = LinkPipeline::bootstrap(&ds.left, &boot_right, StreamOptions::default())
        .expect("linkage bootstrap");
    let snap = live.snapshot();
    drop(live);

    let run = |metrics: bool, threads: usize| {
        let mut p = LinkPipeline::from_snapshot(&snap, StreamOptions::default().threshold)
            .expect("link snapshot restores");
        p.set_metrics(metrics);
        p.seed_base(&ds.left, &boot_right).expect("seeds");
        let outcomes = p.ingest_batch_parallel(tail.clone(), Side::Right, threads);
        (
            digest_outcomes(&outcomes),
            p.clusters(),
            p.snapshot().to_json(),
        )
    };

    let reference = run(true, 1);
    assert!(
        !reference.0.is_empty(),
        "the split must leave records to stream"
    );
    for metrics in [true, false] {
        for threads in [1usize, 2, 4] {
            let got = run(metrics, threads);
            assert_eq!(
                reference, got,
                "link run diverged at metrics={metrics} threads={threads}"
            );
        }
    }
}
