//! Batch/incremental blocking parity.
//!
//! The incremental index must produce exactly the candidate set the batch
//! blockers produce when records are inserted one at a time — on any
//! dataset where no bucket crosses the frequency cap (structurally
//! guaranteed here: every table is far smaller than the cap), the sets
//! are equal, not merely similar.

use proptest::prelude::*;
use std::collections::BTreeSet;
use zeroer_blocking::{Blocker, PairMode, QgramBlocker, TokenBlocker, UnionBlocker};
use zeroer_datagen::{all_profiles, generate};
use zeroer_stream::{IncrementalIndex, IndexConfig, RecordKeys};
use zeroer_tabular::{Record, Schema, Table, Value};
use zeroer_textsim::derive::Deriver;

/// One dedup table (left ++ right) from a generated linkage dataset.
fn dedup_table_of(profile_idx: usize, scale: f64, seed: u64) -> Table {
    let profiles = all_profiles();
    let ds = generate(&profiles[profile_idx % profiles.len()], scale, seed);
    ds.dedup_table().0
}

/// Runs the incremental index record-by-record — deriving each record
/// once through the shared derivation layer — and collects the full
/// emitted pair set, normalized as `(small, large)`.
fn incremental_pairs(table: &Table, cfg: IndexConfig) -> BTreeSet<(usize, usize)> {
    let mut deriver = Deriver::new(cfg.derive_config());
    let mut index = IncrementalIndex::new(cfg);
    let mut pairs = BTreeSet::new();
    for (idx, r) in table.records().iter().enumerate() {
        let d = deriver.derive(&r.values);
        let keys = RecordKeys::from_derived(&d, deriver.interner());
        for c in index.insert_keys(&keys) {
            assert!(c < idx, "candidates must be previously inserted records");
            pairs.insert((c, idx));
        }
    }
    pairs
}

fn batch_pairs(table: &Table, blocker: &dyn Blocker) -> BTreeSet<(usize, usize)> {
    blocker
        .candidates(table, table, PairMode::Dedup)
        .pairs()
        .iter()
        .copied()
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Default recipe (token ∪ 4-gram blocking) on every dataset profile.
    /// The cap is lifted above the table size on both sides so no bucket
    /// can overflow: in that regime batch and incremental candidate sets
    /// must be *identical* (overflow divergence is tested separately).
    #[test]
    fn union_recipe_matches_batch(profile in 0usize..6, seed in 0u64..1000) {
        let table = dedup_table_of(profile, 0.01, seed);
        let cap = table.len().max(2);
        let batch = batch_pairs(
            &table,
            &UnionBlocker::new(vec![
                Box::new(TokenBlocker { attr: 0, max_bucket: cap, min_overlap: 1 }),
                Box::new(QgramBlocker { attr: 0, q: 4, max_bucket: cap }),
            ]),
        );
        let incremental = incremental_pairs(
            &table,
            IndexConfig { max_bucket: cap, ..Default::default() },
        );
        prop_assert_eq!(incremental.len(), batch.len(),
            "batch and incremental candidate-set sizes diverge");
        prop_assert!(incremental == batch, "candidate sets diverge");
    }

    /// Overlap blocking (≥ 2 shared tokens, no q-gram leg).
    #[test]
    fn overlap_recipe_matches_batch(profile in 0usize..6, seed in 0u64..1000) {
        let table = dedup_table_of(profile, 0.01, seed);
        let cap = table.len().max(2);
        let batch = batch_pairs(
            &table,
            &TokenBlocker { attr: 0, max_bucket: cap, min_overlap: 2 },
        );
        let incremental = incremental_pairs(
            &table,
            IndexConfig { min_token_overlap: 2, max_bucket: cap, ..Default::default() },
        );
        prop_assert!(incremental == batch, "overlap candidate sets diverge");
    }

    /// Random short strings over a tiny vocabulary — much denser bucket
    /// collisions than the realistic generators produce.
    #[test]
    fn dense_collisions_match_batch(
        words in proptest::collection::vec(0usize..8, 30),
        seed in 0u64..50,
    ) {
        const VOCAB: [&str; 8] =
            ["red", "green", "blue", "apple", "pear", "plum", "sky", "sea"];
        let mut t = Table::new("dense", Schema::new(["name"]));
        for (i, &w) in words.iter().enumerate() {
            let second = VOCAB[(w + seed as usize + i) % VOCAB.len()];
            t.push(Record::new(
                i as u32,
                vec![Value::Str(format!("{} {second}", VOCAB[w]))],
            ));
        }
        let batch = batch_pairs(
            &t,
            &UnionBlocker::new(vec![
                Box::new(TokenBlocker::new(0)),
                Box::new(QgramBlocker::new(0, 4)),
            ]),
        );
        let incremental = incremental_pairs(&t, IndexConfig::default());
        prop_assert_eq!(&incremental, &batch);
    }
}

/// Realistic setting: default cap (400) on a dataset smaller than the
/// cap, where overflow is impossible and parity must be exact.
#[test]
fn default_cap_parity_on_restaurants() {
    let profiles = all_profiles();
    let rest = profiles
        .iter()
        .position(|p| p.notation.contains("FZ"))
        .unwrap_or(0);
    let table = dedup_table_of(rest, 0.25, 5);
    assert!(
        table.len() < 400,
        "premise: table smaller than the bucket cap"
    );
    let batch = batch_pairs(
        &table,
        &UnionBlocker::new(vec![
            Box::new(TokenBlocker::new(0)),
            Box::new(QgramBlocker::new(0, 4)),
        ]),
    );
    let incremental = incremental_pairs(&table, IndexConfig::default());
    assert_eq!(incremental, batch);
}

/// The one intended divergence: a bucket overflowing the cap mid-stream
/// stops pairing from the crossing point on, while batch drops the bucket
/// retroactively. The divergence is bounded by pairs among the first
/// `cap` members.
#[test]
fn cap_overflow_divergence_is_bounded_and_one_sided() {
    let mut t = Table::new("hot", Schema::new(["name"]));
    for i in 0..30 {
        t.push(Record::new(
            i as u32,
            vec![Value::Str(format!("the item{i}"))],
        ));
    }
    let cap = 5;
    let batch = batch_pairs(
        &t,
        &TokenBlocker {
            attr: 0,
            max_bucket: cap,
            min_overlap: 1,
        },
    );
    let incremental = incremental_pairs(
        &t,
        IndexConfig {
            qgram: 0,
            max_bucket: cap,
            ..Default::default()
        },
    );
    assert!(
        batch.is_empty(),
        "batch drops the overflowing 'the' bucket entirely"
    );
    assert!(
        incremental.len() <= cap * (cap - 1) / 2,
        "early pairs are bounded by the cap: {}",
        incremental.len()
    );
    assert!(
        incremental.iter().all(|&(_, b)| b < cap),
        "no pairs may be emitted after the bucket is retired"
    );
}
