//! Snapshot-lifecycle stress: resolver threads racing a `refit()` swap.
//!
//! Three guarantees under test:
//!
//! 1. **No torn model** — while [`zeroer_stream::WriteHandle::refresh`]
//!    swaps a re-fitted snapshot, every concurrent resolve answer is
//!    bit-identical (`f64::to_bits`) to either the old model's answer
//!    or the new model's answer — never a mix — at 1, 2 and 4 writer
//!    threads.
//! 2. **Swap visibility** — a handle refreshed before the swap answers
//!    exactly like the old snapshot; one refreshed after the swap
//!    returns answers exactly like the deterministic refit replica.
//! 3. **Watermark parity** — the drift auto-trigger fires at ingest
//!    boundaries only, so sequential and parallel ingestion of the same
//!    records refit at the same point and stay bit-identical.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use zeroer_datagen::generate;
use zeroer_datagen::profiles::rest_fz;
use zeroer_stream::{
    PipelineSnapshot, ResolveOutcome, SplitPipeline, StreamOptions, StreamPipeline,
};
use zeroer_tabular::{Record, Table};

/// Bootstrap/stream split of a generated dedup table.
fn split_dataset(scale: f64, seed: u64) -> (Table, Vec<Record>) {
    let ds = generate(&rest_fz(), scale, seed);
    let (table, _) = ds.dedup_table();
    let cut = (table.len() * 7 / 10).max(4);
    let mut boot = Table::new("boot", table.schema().clone());
    for r in table.records().iter().take(cut) {
        boot.push(r.clone());
    }
    let tail: Vec<Record> = table.records()[cut..].to_vec();
    (boot, tail)
}

fn cold_pipeline(snap: &PipelineSnapshot, boot: &Table) -> StreamPipeline {
    let mut p = StreamPipeline::from_snapshot(snap, StreamOptions::default().threshold)
        .expect("snapshot restores");
    p.seed_base(boot).expect("bootstrap decisions replay");
    p
}

fn outcomes_bit_equal(a: &ResolveOutcome, b: &ResolveOutcome) -> bool {
    a.epoch == b.epoch
        && a.candidates == b.candidates
        && a.cluster == b.cluster
        && a.matches.len() == b.matches.len()
        && a.matches
            .iter()
            .zip(&b.matches)
            .all(|((ai, ap), (bi, bp))| ai == bi && ap.to_bits() == bp.to_bits())
}

/// Resolver threads hammer the read path while the writer swaps a
/// re-fitted snapshot underneath them. Every concurrent answer must be
/// bit-identical to the old model's answer or the new model's — and a
/// handle refreshed after the swap must answer exactly like the refit
/// replica.
#[test]
fn resolves_racing_a_refit_swap_see_old_or_new_never_torn() {
    let (boot, tail) = split_dataset(0.25, 42);
    let (live, _) = StreamPipeline::bootstrap(&boot, StreamOptions::default()).expect("bootstrap");
    let snap = live.snapshot();
    let probes: Vec<Record> = tail.iter().take(10).cloned().collect();

    // The two legal worlds, computed on replicas: OLD = bootstrap model
    // over boot+tail, NEW = the same store after a deterministic refit.
    // EM from a fixed initialization over a fixed candidate set is
    // deterministic, so the replica's refit model is bit-identical to
    // the one the writer will swap in.
    let mut replica = cold_pipeline(&snap, &boot);
    replica.ingest_batch(tail.clone());
    let mut old_handle = replica.pin_read_handle();
    let expected_old: Vec<ResolveOutcome> = probes.iter().map(|p| old_handle.resolve(p)).collect();
    replica.refit().expect("replica refit succeeds");
    assert_eq!(replica.generation(), 1);
    let mut new_handle = replica.pin_read_handle();
    let expected_new: Vec<ResolveOutcome> = probes.iter().map(|p| new_handle.resolve(p)).collect();
    assert!(
        expected_old
            .iter()
            .zip(&expected_new)
            .any(|(a, b)| !outcomes_bit_equal(a, b)),
        "refit changed no probe answer — the torn-model check would be vacuous"
    );

    for writer_threads in [1usize, 2, 4] {
        let split = SplitPipeline::with_threads(cold_pipeline(&snap, &boot), writer_threads);
        let writes = split.write_handle();
        writes.ingest(tail.clone()).expect("write path is open");

        // Pre-swap: a freshly refreshed handle answers like the old
        // snapshot, bit for bit.
        let mut pre = split.read_handle();
        pre.refresh();
        for (probe, want) in probes.iter().zip(&expected_old) {
            let got = pre.resolve(probe);
            assert!(
                outcomes_bit_equal(&got, want),
                "pre-swap resolve diverged from the old snapshot \
                 (writer_threads={writer_threads})"
            );
        }

        // Resolver threads: every answer must match one of the two
        // worlds exactly. A torn model (new means with old ranges, half
        // a parameter swap, …) would produce a third posterior pattern.
        let stop = Arc::new(AtomicBool::new(false));
        let mut resolvers = Vec::new();
        for _ in 0..3 {
            let mut handle = split.read_handle();
            let stop = Arc::clone(&stop);
            let probes = probes.clone();
            let expected_old = expected_old.clone();
            let expected_new = expected_new.clone();
            resolvers.push(std::thread::spawn(move || {
                let mut rounds = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    for (i, probe) in probes.iter().enumerate() {
                        let got = handle.resolve(probe);
                        let old = outcomes_bit_equal(&got, &expected_old[i]);
                        let new = outcomes_bit_equal(&got, &expected_new[i]);
                        assert!(
                            old || new,
                            "probe {i} answered with neither the old nor the new \
                             snapshot's decision — torn model observed"
                        );
                    }
                    handle.refresh();
                    rounds += 1;
                }
                rounds
            }));
        }

        // The swap, mid-hammering.
        let report = writes.refresh().expect("refit succeeds on live records");
        assert_eq!(report.generation, 1);
        assert!(!report.auto, "manual refresh must not be flagged auto");

        // Post-swap: refreshed handles answer like the refit replica.
        let mut post = split.read_handle();
        post.refresh();
        for (probe, want) in probes.iter().zip(&expected_new) {
            let got = post.resolve(probe);
            assert!(
                outcomes_bit_equal(&got, want),
                "post-swap resolve diverged from the refit replica \
                 (writer_threads={writer_threads})"
            );
        }

        stop.store(true, Ordering::Relaxed);
        for r in resolvers {
            let rounds = r.join().expect("resolver thread must not panic");
            assert!(rounds > 0, "resolver never completed a round");
        }
        split.shutdown();
    }
}

/// The drift watermark auto-triggers `refit()` at ingest boundaries —
/// and because the boundary is the ingest *call*, sequential and
/// parallel ingestion of the same batch refit at the same point and
/// make bit-identical decisions.
#[test]
fn drift_watermark_auto_triggers_refit_identically_at_any_thread_count() {
    let (boot, tail) = split_dataset(0.2, 7);
    // Any nonzero divergence fires as soon as one window record exists
    // — the point here is the trigger mechanics, not the threshold
    // calibration.
    let opts = || StreamOptions {
        refresh_watermark: Some(1e-12),
        refresh_min_records: 1,
        ..StreamOptions::default()
    };

    let (mut sequential, _) = StreamPipeline::bootstrap(&boot, opts()).expect("bootstrap");
    let seq_outcomes = sequential.ingest_batch(tail.clone());
    assert!(
        sequential.generation() > 0,
        "watermark never fired — the auto-trigger is dead"
    );

    let (mut parallel, _) = StreamPipeline::bootstrap(&boot, opts()).expect("bootstrap");
    let par_outcomes = parallel.ingest_batch_parallel(tail.clone(), 4);
    assert_eq!(
        sequential.generation(),
        parallel.generation(),
        "sequential and parallel ingestion refit a different number of times"
    );
    assert_eq!(seq_outcomes.len(), par_outcomes.len());
    for (a, b) in seq_outcomes.iter().zip(&par_outcomes) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.candidates, b.candidates);
        assert_eq!(a.cluster, b.cluster);
        assert_eq!(a.matches.len(), b.matches.len());
        for ((ai, ap), (bi, bp)) in a.matches.iter().zip(&b.matches) {
            assert_eq!(ai, bi);
            assert_eq!(ap.to_bits(), bp.to_bits());
        }
    }
    assert_eq!(sequential.clusters(), parallel.clusters());

    // After the refit, the window rebased on the new model: divergence
    // starts over from an empty window.
    assert_eq!(parallel.drift().window_records(), 0);
}
