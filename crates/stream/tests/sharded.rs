//! Sharded/unsharded candidate-set parity.
//!
//! [`ShardedIndex`] must produce exactly the candidate sets of the
//! unsharded [`IncrementalIndex`] for any record stream, any shard
//! count, and any thread count — sharding the key-space is a load-balance
//! decision, never a semantic one. Combined with `tests/parity.rs`
//! (incremental vs. batch blockers), this transitively pins the sharded
//! index to the batch blocking semantics too.

use proptest::prelude::*;
use zeroer_datagen::{all_profiles, generate};
use zeroer_stream::{IncrementalIndex, IndexConfig, RecordKeys, ShardedIndex};
use zeroer_tabular::{Record, Schema, Table, Value};
use zeroer_textsim::derive::Deriver;

fn dedup_table_of(profile_idx: usize, scale: f64, seed: u64) -> Table {
    let profiles = all_profiles();
    let ds = generate(&profiles[profile_idx % profiles.len()], scale, seed);
    ds.dedup_table().0
}

/// Derives every record of a table once (the shared derivation layer)
/// and extracts its blocking keys.
fn table_keys(table: &Table, cfg: &IndexConfig) -> Vec<RecordKeys> {
    let mut deriver = Deriver::new(cfg.derive_config());
    table
        .records()
        .iter()
        .map(|r| {
            let d = deriver.derive(&r.values);
            RecordKeys::from_derived(&d, deriver.interner())
        })
        .collect()
}

/// Record-by-record reference: the unsharded index.
fn unsharded_candidates(keys: &[RecordKeys], cfg: &IndexConfig) -> Vec<Vec<usize>> {
    let mut index = IncrementalIndex::new(cfg.clone());
    keys.iter().map(|k| index.insert_keys(k)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Arbitrary generated record streams, arbitrary shard counts,
    /// record-by-record inserts.
    #[test]
    fn sharded_insert_matches_unsharded(
        profile in 0usize..6,
        seed in 0u64..500,
        shards in 1usize..9,
    ) {
        let table = dedup_table_of(profile, 0.01, seed);
        let cfg = IndexConfig::default();
        let keys = table_keys(&table, &cfg);
        let expected = unsharded_candidates(&keys, &cfg);
        let mut sharded = ShardedIndex::with_shards(cfg, shards);
        for (i, k) in keys.iter().enumerate() {
            prop_assert_eq!(
                sharded.insert_keys(k.clone()),
                expected[i].clone(),
                "record {} diverged with {} shards", i, shards
            );
        }
    }

    /// Same, through the parallel batch path with arbitrary thread
    /// counts, and with an overlap-blocking configuration in the mix
    /// (token counts must sum correctly across shards).
    #[test]
    fn sharded_batch_matches_unsharded(
        profile in 0usize..6,
        seed in 0u64..500,
        shards in 1usize..9,
        threads in 1usize..5,
        overlap in 1usize..3,
    ) {
        let table = dedup_table_of(profile, 0.01, seed);
        let cfg = IndexConfig { min_token_overlap: overlap, ..Default::default() };
        let keys = table_keys(&table, &cfg);
        let expected = unsharded_candidates(&keys, &cfg);
        let mut sharded = ShardedIndex::with_shards(cfg.clone(), shards);
        let got = sharded.insert_batch(keys, threads);
        prop_assert_eq!(got, expected);
        prop_assert_eq!(sharded.len(), table.len());
    }

    /// Dense collisions over a tiny vocabulary with a tiny bucket cap:
    /// cap retirement must fire identically regardless of sharding.
    #[test]
    fn cap_retirement_is_shard_independent(
        words in proptest::collection::vec(0usize..6, 40),
        shards in 1usize..9,
        threads in 1usize..5,
    ) {
        const VOCAB: [&str; 6] = ["red", "green", "blue", "apple", "pear", "plum"];
        let mut t = Table::new("dense", Schema::new(["name"]));
        for (i, &w) in words.iter().enumerate() {
            let second = VOCAB[(w + i) % VOCAB.len()];
            t.push(Record::new(
                i as u32,
                vec![Value::Str(format!("{} {second}", VOCAB[w]))],
            ));
        }
        let cfg = IndexConfig { max_bucket: 5, ..Default::default() };
        let keys = table_keys(&t, &cfg);
        let expected = unsharded_candidates(&keys, &cfg);
        let mut sharded = ShardedIndex::with_shards(cfg.clone(), shards);
        prop_assert_eq!(sharded.insert_batch(keys, threads), expected);
    }
}

/// Null key attributes must behave identically through both structures
/// (no keys, no candidates, no index poisoning).
#[test]
fn null_keys_are_shard_neutral() {
    let cfg = IndexConfig::default();
    let records = vec![
        Record::new(0, vec![Value::Str("some title".into())]),
        Record::new(1, vec![Value::Null]),
        Record::new(2, vec![Value::Str("some title".into())]),
    ];
    let mut deriver = Deriver::new(cfg.derive_config());
    let mut flat = IncrementalIndex::new(cfg.clone());
    let mut sharded = ShardedIndex::with_shards(cfg, 4);
    for r in &records {
        let d = deriver.derive(&r.values);
        let keys = RecordKeys::from_derived(&d, deriver.interner());
        assert_eq!(sharded.insert_keys(keys.clone()), flat.insert_keys(&keys));
    }
}
