//! Reader/writer interleaving over the split pipeline.
//!
//! Two guarantees under test:
//!
//! 1. **Resolve parity** — [`zeroer_stream::ReadHandle::resolve`] makes
//!    the same match decisions as the ingest path (same candidates,
//!    bit-identical posteriors via `f64::to_bits`), because it runs the
//!    same probe + scoring code against the same state.
//! 2. **Interleaving safety** — concurrent resolver threads hammering
//!    epoch-pinned [`zeroer_stream::ReadHandle`]s while the write path
//!    ingests, retracts and compacts never observe a torn view (every
//!    answer is consistent with the handle's pinned epoch, and repeats
//!    bit-identically on the pinned view), and the final state is
//!    bit-identical to a sequential replay of the same admitted
//!    operations — at 1, 2 and 4 writer threads.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use zeroer_datagen::generate;
use zeroer_datagen::profiles::rest_fz;
use zeroer_stream::{
    IngestOutcome, PipelineSnapshot, SplitPipeline, StreamOptions, StreamPipeline,
};
use zeroer_tabular::{Record, Table};

/// Bootstrap/stream split of a generated dedup table.
fn split_dataset(scale: f64, seed: u64) -> (Table, Vec<Record>) {
    let ds = generate(&rest_fz(), scale, seed);
    let (table, _) = ds.dedup_table();
    let cut = (table.len() * 7 / 10).max(4);
    let mut boot = Table::new("boot", table.schema().clone());
    for r in table.records().iter().take(cut) {
        boot.push(r.clone());
    }
    let tail: Vec<Record> = table.records()[cut..].to_vec();
    (boot, tail)
}

fn cold_pipeline(snap: &PipelineSnapshot, boot: &Table) -> StreamPipeline {
    let mut p = StreamPipeline::from_snapshot(snap, StreamOptions::default().threshold)
        .expect("snapshot restores");
    p.seed_base(boot).expect("bootstrap decisions replay");
    p
}

fn assert_outcomes_bit_identical(a: &[IngestOutcome], b: &[IngestOutcome], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.index, y.index, "{context}");
        assert_eq!(x.candidates, y.candidates, "{context} record {}", x.index);
        assert_eq!(x.cluster, y.cluster, "{context} record {}", x.index);
        assert_eq!(
            x.matches.len(),
            y.matches.len(),
            "{context} record {}",
            x.index
        );
        for ((xi, xp), (yi, yp)) in x.matches.iter().zip(&y.matches) {
            assert_eq!(xi, yi, "{context} record {}", x.index);
            assert_eq!(
                xp.to_bits(),
                yp.to_bits(),
                "{context} record {}: {xp} vs {yp}",
                x.index
            );
        }
    }
}

/// Resolve on a pinned handle answers with the ingest path's exact
/// decisions: before each sequential ingest, a freshly pinned handle
/// must report the same candidate count, bit-identical matches, and the
/// same new-entity verdict the ingest then commits.
#[test]
fn resolve_matches_ingest_decisions_bit_exactly() {
    let (boot, tail) = split_dataset(0.2, 42);
    let (live, _) = StreamPipeline::bootstrap(&boot, StreamOptions::default()).expect("bootstrap");
    let snap = live.snapshot();
    let mut pipeline = cold_pipeline(&snap, &boot);

    let mut resolved_any = false;
    for record in tail {
        let mut handle = pipeline.pin_read_handle();
        let peek = handle.resolve(&record);
        // Pinned view ⇒ resolving again is bit-identical.
        let again = handle.resolve(&record);
        assert_eq!(peek.candidates, again.candidates);
        assert_eq!(peek.cluster, again.cluster);
        assert_eq!(peek.matches.len(), again.matches.len());
        for ((ai, ap), (bi, bp)) in peek.matches.iter().zip(&again.matches) {
            assert_eq!(ai, bi);
            assert_eq!(ap.to_bits(), bp.to_bits());
        }

        let committed = pipeline.ingest(record);
        assert_eq!(peek.epoch, pipeline.store().epoch());
        assert_eq!(peek.candidates, committed.candidates);
        assert_eq!(peek.is_new_entity(), committed.is_new_entity());
        assert_eq!(peek.matches.len(), committed.matches.len());
        for ((ri, rp), (ci, cp)) in peek.matches.iter().zip(&committed.matches) {
            assert_eq!(ri, ci);
            assert_eq!(
                rp.to_bits(),
                cp.to_bits(),
                "resolve posterior {rp} != ingest posterior {cp}"
            );
        }
        resolved_any |= !peek.is_new_entity();
    }
    assert!(
        resolved_any,
        "dataset produced no matches — test is vacuous"
    );
}

/// The interleaving stress: resolver threads run against their own
/// handles (refreshing between rounds) while the single submitter
/// drives ingest chunks, a retraction and a compaction through the
/// write path. Afterwards the whole admitted history is replayed
/// sequentially and must be bit-identical.
#[test]
fn concurrent_resolves_never_observe_torn_views() {
    let (boot, tail) = split_dataset(0.2, 7);
    let (live, _) = StreamPipeline::bootstrap(&boot, StreamOptions::default()).expect("bootstrap");
    let snap = live.snapshot();
    let probes: Vec<Record> = tail.iter().take(12).cloned().collect();
    let retract_victims: Vec<usize> = (0..boot.len()).filter(|i| i % 5 == 3).take(6).collect();

    // The sequential reference: same operations, same order, one thread,
    // no split machinery.
    let mut reference = cold_pipeline(&snap, &boot);
    let mut reference_outcomes: Vec<IngestOutcome> = Vec::new();
    let chunks: Vec<Vec<Record>> = tail.chunks(7).map(<[Record]>::to_vec).collect();
    let half = chunks.len() / 2;
    for (i, chunk) in chunks.iter().enumerate() {
        if i == half {
            reference
                .retract_batch(&retract_victims)
                .expect("victims are live base records");
            reference.compact();
        }
        for r in chunk.clone() {
            reference_outcomes.push(reference.ingest(r));
        }
    }
    let reference_clusters = reference.clusters();

    for writer_threads in [1usize, 2, 4] {
        let split = SplitPipeline::with_threads(cold_pipeline(&snap, &boot), writer_threads);
        let stop = Arc::new(AtomicBool::new(false));

        // Resolver threads: each pins its own handle, resolves every
        // probe twice per round (bit-identical on the pinned view),
        // checks every answer against the pinned epoch/len, then
        // refreshes and goes again.
        let mut resolvers = Vec::new();
        for _ in 0..3 {
            let mut handle = split.read_handle();
            let stop = Arc::clone(&stop);
            let probes = probes.clone();
            resolvers.push(std::thread::spawn(move || {
                let mut rounds = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    for probe in &probes {
                        let out = handle.resolve(probe);
                        assert_eq!(
                            out.epoch,
                            handle.epoch(),
                            "answer from a different epoch than the pinned view"
                        );
                        for &(idx, p) in &out.matches {
                            assert!(
                                idx < handle.len(),
                                "match index {idx} outside the pinned view (len {})",
                                handle.len()
                            );
                            assert!(p.is_finite());
                        }
                        let again = handle.resolve(probe);
                        assert_eq!(out.candidates, again.candidates, "pinned view mutated");
                        assert_eq!(out.matches.len(), again.matches.len());
                        for ((ai, ap), (bi, bp)) in out.matches.iter().zip(&again.matches) {
                            assert_eq!(ai, bi, "pinned view mutated");
                            assert_eq!(ap.to_bits(), bp.to_bits(), "pinned view mutated");
                        }
                    }
                    handle.refresh();
                    rounds += 1;
                }
                rounds
            }));
        }

        // The write side: same admitted history as the reference.
        let writes = split.write_handle();
        let mut outcomes: Vec<IngestOutcome> = Vec::new();
        for (i, chunk) in chunks.iter().enumerate() {
            if i == half {
                writes
                    .retract(retract_victims.clone())
                    .expect("victims are live base records");
                writes.compact().expect("write path is open");
            }
            outcomes.extend(writes.ingest(chunk.clone()).expect("write path is open"));
        }

        stop.store(true, Ordering::Relaxed);
        for r in resolvers {
            let rounds = r.join().expect("resolver thread must not panic");
            assert!(rounds > 0, "resolver never completed a round");
        }

        // A fresh handle pinned after the last write sees the final
        // state.
        let mut latest = split.read_handle();
        latest.refresh();
        assert_eq!(latest.len(), reference.len());

        let pipeline = split.shutdown();
        assert_outcomes_bit_identical(
            &reference_outcomes,
            &outcomes,
            &format!("writer_threads={writer_threads}"),
        );
        assert_eq!(
            reference_clusters,
            pipeline.clusters(),
            "final clusters diverged from the sequential replay at {writer_threads} writer threads"
        );
    }
}

/// Writes submitted after shutdown fail instead of hanging, and the
/// drained pipeline carries every admitted write.
#[test]
fn shutdown_drains_and_closes_the_write_path() {
    let (boot, tail) = split_dataset(0.15, 11);
    let (live, _) = StreamPipeline::bootstrap(&boot, StreamOptions::default()).expect("bootstrap");
    let snap = live.snapshot();

    let split = SplitPipeline::new(cold_pipeline(&snap, &boot));
    let writes = split.write_handle();
    let n = tail.len();
    let outcomes = writes.ingest(tail).expect("write path is open");
    assert_eq!(outcomes.len(), n);

    let pipeline = split.shutdown();
    assert_eq!(pipeline.len(), boot.len() + n);
    assert!(
        writes.ingest(vec![]).is_err(),
        "the admission queue must reject writes after shutdown"
    );
}
