//! End-to-end streaming accuracy: bootstrap on 70 % of a dedup dataset,
//! ingest the remaining 30 % through the streaming path (frozen-model
//! scoring only — zero EM iterations during ingest), and compare
//! pairwise cluster F1 against the full-batch pipeline on the same data.

use zeroer_datagen::generate;
use zeroer_datagen::profiles::rest_fz;
use zeroer_eval::clusters::{clusters_from_pairs, pairwise_cluster_f1};
use zeroer_stream::{StreamOptions, StreamPipeline};
use zeroer_tabular::{Record, Table};

/// Builds a dedup table (left ++ right) plus ground-truth duplicate pairs
/// in concatenated indexing.
fn dedup_dataset(scale: f64, seed: u64) -> (Table, Vec<(usize, usize)>) {
    generate(&rest_fz(), scale, seed).dedup_table()
}

fn prefix_table(t: &Table, n: usize) -> Table {
    let mut out = Table::new("prefix", t.schema().clone());
    for r in t.records().iter().take(n) {
        out.push(r.clone());
    }
    out
}

fn pair_f1(clusters: &[Vec<usize>], truth: &[(usize, usize)]) -> f64 {
    pairwise_cluster_f1(clusters, &clusters_from_pairs(truth)).f1()
}

#[test]
fn streaming_f1_stays_within_two_points_of_batch() {
    let (table, truth) = dedup_dataset(0.25, 42);
    let opts = StreamOptions::default();

    // Full-batch reference: bootstrap on 100 % of the data is exactly the
    // batch dedup pipeline (blocking → features → EM → transitive
    // closure).
    let (batch, _) = StreamPipeline::bootstrap(&table, opts.clone()).expect("batch fit");
    let batch_f1 = pair_f1(&batch.clusters(), &truth);

    // Streaming: fit on the first 70 %, ingest the rest in batches.
    let cut = table.len() * 7 / 10;
    let bootstrap_table = prefix_table(&table, cut);
    let (mut stream, report) =
        StreamPipeline::bootstrap(&bootstrap_table, opts).expect("bootstrap fit");
    assert!(report.em_iterations >= 1, "bootstrap runs EM");

    let tail: Vec<Record> = table.records()[cut..].to_vec();
    for chunk in tail.chunks(16) {
        let outcomes = stream.ingest_batch(chunk.to_vec());
        assert_eq!(outcomes.len(), chunk.len());
    }
    assert_eq!(stream.store().len(), table.len());
    let stream_f1 = pair_f1(&stream.clusters(), &truth);

    assert!(
        batch_f1 > 0.85,
        "batch reference must be accurate on Rest-FZ, got {batch_f1}"
    );
    assert!(
        batch_f1 - stream_f1 <= 0.02,
        "streaming F1 {stream_f1} must be within 2 points of batch F1 {batch_f1}"
    );
}

#[test]
fn streaming_is_stable_across_seeds() {
    for seed in [7, 19] {
        let (table, truth) = dedup_dataset(0.15, seed);
        let cut = table.len() * 7 / 10;
        let (mut stream, _) =
            StreamPipeline::bootstrap(&prefix_table(&table, cut), StreamOptions::default())
                .expect("bootstrap fit");
        stream.ingest_batch(table.records()[cut..].to_vec());
        let f1 = pair_f1(&stream.clusters(), &truth);
        assert!(f1 > 0.8, "seed {seed}: streaming F1 {f1}");
    }
}
