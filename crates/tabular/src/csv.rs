//! Minimal RFC-4180-style CSV reader/writer.
//!
//! Handles quoted fields, embedded commas, escaped quotes (`""`) and
//! embedded newlines — enough to round-trip the synthetic benchmark
//! datasets and load user-provided files in the examples. Not a general
//! streaming CSV engine by design.

use crate::schema::Schema;
use crate::table::{Record, Table};
use crate::value::Value;

/// Error from CSV parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// A record had a different number of fields than the header.
    RaggedRow {
        /// 1-based line-ish index of the offending record.
        row: usize,
        /// Fields found.
        found: usize,
        /// Fields expected from the header.
        expected: usize,
    },
    /// Input ended inside a quoted field.
    UnterminatedQuote,
    /// Input had no header row.
    Empty,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::RaggedRow {
                row,
                found,
                expected,
            } => {
                write!(f, "row {row}: found {found} fields, expected {expected}")
            }
            CsvError::UnterminatedQuote => write!(f, "unterminated quoted field"),
            CsvError::Empty => write!(f, "empty CSV input"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Splits CSV text into rows of raw string fields.
pub fn parse_rows(input: &str) -> Result<Vec<Vec<String>>, CsvError> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = input.chars().peekable();
    let mut in_quotes = false;
    let mut any = false;
    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => {
                    row.push(std::mem::take(&mut field));
                }
                '\r' => { /* swallow; \n terminates */ }
                '\n' => {
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(CsvError::UnterminatedQuote);
    }
    if !field.is_empty() || !row.is_empty() {
        row.push(field);
        rows.push(row);
    }
    if !any || rows.is_empty() {
        return Err(CsvError::Empty);
    }
    Ok(rows)
}

/// Parses CSV text (header row required) into a [`Table`]. Record ids are
/// assigned sequentially; fields are interpreted via [`Value::parse`].
pub fn read_table(name: &str, input: &str) -> Result<Table, CsvError> {
    let rows = parse_rows(input)?;
    let mut iter = rows.into_iter();
    let header = iter.next().ok_or(CsvError::Empty)?;
    let schema = Schema::new(header);
    let expected = schema.arity();
    let mut table = Table::new(name, schema);
    for (i, row) in iter.enumerate() {
        if row.len() != expected {
            return Err(CsvError::RaggedRow {
                row: i + 2,
                found: row.len(),
                expected,
            });
        }
        let values = row.iter().map(|f| Value::parse(f)).collect();
        table.push(Record::new(i as u32, values));
    }
    Ok(table)
}

fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Serializes a table back to CSV text (header + records).
pub fn write_table(table: &Table) -> String {
    let mut out = String::new();
    out.push_str(
        &table
            .schema()
            .attributes()
            .iter()
            .map(|a| escape(a))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for r in table.records() {
        let line = r
            .values
            .iter()
            .map(|v| escape(&v.to_string()))
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_csv() {
        let rows = parse_rows("a,b\n1,2\n3,4\n").unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[1], vec!["1", "2"]);
    }

    #[test]
    fn parses_quoted_fields_with_commas_and_quotes() {
        let rows = parse_rows("name,notes\n\"Smith, John\",\"said \"\"hi\"\"\"\n").unwrap();
        assert_eq!(rows[1][0], "Smith, John");
        assert_eq!(rows[1][1], "said \"hi\"");
    }

    #[test]
    fn parses_embedded_newline() {
        let rows = parse_rows("a\n\"line1\nline2\"\n").unwrap();
        assert_eq!(rows[1][0], "line1\nline2");
    }

    #[test]
    fn handles_crlf() {
        let rows = parse_rows("a,b\r\n1,2\r\n").unwrap();
        assert_eq!(rows[1], vec!["1", "2"]);
    }

    #[test]
    fn missing_trailing_newline_ok() {
        let rows = parse_rows("a\nx").unwrap();
        assert_eq!(rows[1][0], "x");
    }

    #[test]
    fn unterminated_quote_is_error() {
        assert_eq!(parse_rows("a\n\"oops\n"), Err(CsvError::UnterminatedQuote));
    }

    #[test]
    fn empty_input_is_error() {
        assert_eq!(parse_rows(""), Err(CsvError::Empty));
    }

    #[test]
    fn read_table_types_fields() {
        let t = read_table("t", "name,year\nalpha,1999\n,\n").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.value(0, 1), &Value::Int(1999));
        assert!(t.value(1, 0).is_null());
    }

    #[test]
    fn ragged_row_is_error() {
        let err = read_table("t", "a,b\n1\n").unwrap_err();
        assert_eq!(
            err,
            CsvError::RaggedRow {
                row: 2,
                found: 1,
                expected: 2
            }
        );
    }

    #[test]
    fn roundtrip_preserves_content() {
        let src = "name,notes\n\"Smith, John\",plain\nbeta,\"multi\nline\"\n";
        let t = read_table("t", src).unwrap();
        let written = write_table(&t);
        let t2 = read_table("t", &written).unwrap();
        assert_eq!(t.records(), t2.records());
    }
}
