//! Relations, records, schemas and type inference.
//!
//! ZeroER operates over two relations `T` and `T'` with aligned attributes
//! (§2.1). This crate provides the minimal tabular substrate: a dynamically
//! typed [`Value`], [`Record`]s grouped into [`Table`]s with a shared
//! [`Schema`], Magellan-style attribute type inference (which drives which
//! similarity functions the feature generator applies to each attribute),
//! and a small quoted-field CSV reader/writer for examples and dataset
//! round-trips.

pub mod csv;
pub mod schema;
pub mod table;
pub mod value;

pub use schema::{infer_attr_type, AttrType, Schema};
pub use table::{Record, Table};
pub use value::Value;
