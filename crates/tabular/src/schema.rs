//! Schemas and Magellan-style attribute type inference.

use crate::value::Value;
use serde::{Deserialize, Serialize};

/// Attribute types, mirroring Magellan's classification which decides
/// which similarity functions apply (§2.1, Figure 1(c)).
///
/// Magellan buckets string attributes by average word count because the
/// useful similarity functions differ: edit distance works on short
/// strings, token-set measures on long ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttrType {
    /// Two-valued attributes.
    Boolean,
    /// Numeric attributes (ints, floats, numeric-looking strings).
    Numeric,
    /// Strings averaging a single word (e.g. venue codes).
    StrShort,
    /// Strings averaging 2–5 words (names, titles of short works).
    StrMedium,
    /// Strings averaging 6–10 words (long titles, addresses).
    StrLong,
    /// Strings averaging more than 10 words (descriptions, abstracts).
    StrHuge,
}

impl AttrType {
    /// Stable lowercase identifier, used by snapshot serialization.
    pub fn name(self) -> &'static str {
        match self {
            AttrType::Boolean => "boolean",
            AttrType::Numeric => "numeric",
            AttrType::StrShort => "str_short",
            AttrType::StrMedium => "str_medium",
            AttrType::StrLong => "str_long",
            AttrType::StrHuge => "str_huge",
        }
    }

    /// Parses a [`AttrType::name`] identifier.
    pub fn from_name(name: &str) -> Option<AttrType> {
        Some(match name {
            "boolean" => AttrType::Boolean,
            "numeric" => AttrType::Numeric,
            "str_short" => AttrType::StrShort,
            "str_medium" => AttrType::StrMedium,
            "str_long" => AttrType::StrLong,
            "str_huge" => AttrType::StrHuge,
            _ => return None,
        })
    }
}

/// Infers the [`AttrType`] of a column from its non-null values.
///
/// Rules (in order): all-boolean-like → `Boolean`; ≥ 90 % numeric →
/// `Numeric`; otherwise bucketed by mean word count. Empty columns
/// default to `StrShort` (any similarity function handles all-null data).
pub fn infer_attr_type<'a, I>(values: I) -> AttrType
where
    I: IntoIterator<Item = &'a Value>,
{
    let mut n = 0usize;
    let mut numeric = 0usize;
    let mut boolean = 0usize;
    let mut total_words = 0usize;
    for v in values {
        if v.is_null() {
            continue;
        }
        n += 1;
        if v.as_number().is_some() {
            numeric += 1;
        }
        if let Some(t) = v.as_text() {
            let lower = t.to_lowercase();
            if matches!(lower.as_str(), "true" | "false" | "yes" | "no" | "0" | "1") {
                boolean += 1;
            }
            total_words += t.split_whitespace().count();
        }
    }
    if n == 0 {
        return AttrType::StrShort;
    }
    if boolean == n {
        return AttrType::Boolean;
    }
    if numeric as f64 >= 0.9 * n as f64 {
        return AttrType::Numeric;
    }
    let mean_words = total_words as f64 / n as f64;
    if mean_words <= 1.5 {
        AttrType::StrShort
    } else if mean_words <= 5.0 {
        AttrType::StrMedium
    } else if mean_words <= 10.0 {
        AttrType::StrLong
    } else {
        AttrType::StrHuge
    }
}

/// Named, ordered attributes shared by all records of a [`crate::Table`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    attributes: Vec<String>,
}

impl Schema {
    /// Builds a schema from attribute names.
    ///
    /// # Panics
    /// Panics if names are empty or duplicated.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(names: I) -> Self {
        let attributes: Vec<String> = names.into_iter().map(Into::into).collect();
        assert!(
            !attributes.is_empty(),
            "schema must have at least one attribute"
        );
        for (i, a) in attributes.iter().enumerate() {
            assert!(
                !attributes[..i].contains(a),
                "duplicate attribute name: {a}"
            );
        }
        Self { attributes }
    }

    /// Attribute names in order.
    pub fn attributes(&self) -> &[String] {
        &self.attributes
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Index of an attribute by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(raw: &[&str]) -> Vec<Value> {
        raw.iter().map(|s| Value::parse(s)).collect()
    }

    #[test]
    fn numeric_column_detected() {
        let v = vals(&["1995", "2001", "1987"]);
        assert_eq!(infer_attr_type(&v), AttrType::Numeric);
    }

    #[test]
    fn mostly_numeric_with_noise_still_numeric() {
        let v = vals(&["10", "20", "30", "40", "50", "60", "70", "80", "90", "n/a"]);
        assert_eq!(infer_attr_type(&v), AttrType::Numeric);
    }

    #[test]
    fn boolean_column_detected() {
        let v = vals(&["true", "false", "true"]);
        assert_eq!(infer_attr_type(&v), AttrType::Boolean);
    }

    #[test]
    fn word_count_buckets() {
        let short = vals(&["acm", "vldb", "sigmod"]);
        assert_eq!(infer_attr_type(&short), AttrType::StrShort);

        let medium = vals(&["deep learning for matching", "entity resolution at scale"]);
        assert_eq!(infer_attr_type(&medium), AttrType::StrMedium);

        let long = vals(&[
            "a very long paper title that goes on and on",
            "another long descriptive string with many words inside",
        ]);
        assert_eq!(infer_attr_type(&long), AttrType::StrLong);

        let huge = vals(&[
            "this product description contains a great many words because \
             e-commerce sites love verbose marketing copy that describes every feature",
        ]);
        assert_eq!(infer_attr_type(&huge), AttrType::StrHuge);
    }

    #[test]
    fn nulls_are_ignored_for_inference() {
        let v = vec![
            Value::Null,
            Value::parse("1999"),
            Value::Null,
            Value::parse("2001"),
        ];
        assert_eq!(infer_attr_type(&v), AttrType::Numeric);
    }

    #[test]
    fn empty_column_defaults_to_short_string() {
        let v: Vec<Value> = vec![Value::Null, Value::Null];
        assert_eq!(infer_attr_type(&v), AttrType::StrShort);
    }

    #[test]
    fn schema_lookup() {
        let s = Schema::new(["name", "addr", "phone"]);
        assert_eq!(s.arity(), 3);
        assert_eq!(s.index_of("addr"), Some(1));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn duplicate_attribute_panics() {
        Schema::new(["a", "a"]);
    }
}
