//! Records and tables.

use crate::schema::{infer_attr_type, AttrType, Schema};
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// One tuple: an id plus one [`Value`] per schema attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// Stable identifier within the table (used in candidate pairs and the
    /// ground truth).
    pub id: u32,
    /// Attribute values, aligned with the table's [`Schema`].
    pub values: Vec<Value>,
}

impl Record {
    /// Creates a record.
    pub fn new(id: u32, values: Vec<Value>) -> Self {
        Self { id, values }
    }
}

/// A relation: a [`Schema`] plus records. Records are index-addressable;
/// `id` is carried for ground-truth bookkeeping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    name: String,
    schema: Schema,
    records: Vec<Record>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Self {
            name: name.into(),
            schema,
            records: Vec::new(),
        }
    }

    /// Table name (for diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Appends a record.
    ///
    /// # Panics
    /// Panics if the record arity does not match the schema.
    pub fn push(&mut self, record: Record) {
        assert_eq!(
            record.values.len(),
            self.schema.arity(),
            "record arity {} does not match schema arity {}",
            record.values.len(),
            self.schema.arity()
        );
        self.records.push(record);
    }

    /// All records.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Record by positional index.
    pub fn record(&self, idx: usize) -> &Record {
        &self.records[idx]
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the table has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Looks up a record index by id (linear scan; tables are loaded once).
    pub fn index_of_id(&self, id: u32) -> Option<usize> {
        self.records.iter().position(|r| r.id == id)
    }

    /// Value of attribute `attr` in record index `idx`.
    pub fn value(&self, idx: usize, attr: usize) -> &Value {
        &self.records[idx].values[attr]
    }

    /// Infers the [`AttrType`] of every attribute from this table's data.
    pub fn infer_types(&self) -> Vec<AttrType> {
        (0..self.schema.arity())
            .map(|a| infer_attr_type(self.records.iter().map(|r| &r.values[a])))
            .collect()
    }

    /// Fraction of null cells per attribute (data-quality diagnostic).
    pub fn null_fractions(&self) -> Vec<f64> {
        let n = self.len().max(1) as f64;
        (0..self.schema.arity())
            .map(|a| {
                self.records
                    .iter()
                    .filter(|r| r.values[a].is_null())
                    .count() as f64
                    / n
            })
            .collect()
    }
}

/// Infers attribute types from *both* tables of a record-linkage task, as
/// Magellan does: the union of the two columns drives the decision so both
/// sides get the same similarity functions.
pub fn infer_joint_types(left: &Table, right: &Table) -> Vec<AttrType> {
    assert_eq!(
        left.schema(),
        right.schema(),
        "joint type inference requires aligned schemas"
    );
    (0..left.schema().arity())
        .map(|a| {
            infer_attr_type(
                left.records()
                    .iter()
                    .chain(right.records())
                    .map(|r| &r.values[a]),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("test", Schema::new(["name", "year"]));
        t.push(Record::new(0, vec!["alpha".into(), Value::Int(1999)]));
        t.push(Record::new(1, vec!["beta gamma".into(), Value::Int(2001)]));
        t
    }

    #[test]
    fn push_and_access() {
        let t = sample();
        assert_eq!(t.len(), 2);
        assert_eq!(t.value(1, 0), &Value::Str("beta gamma".into()));
        assert_eq!(t.index_of_id(1), Some(1));
        assert_eq!(t.index_of_id(99), None);
    }

    #[test]
    #[should_panic(expected = "record arity")]
    fn arity_mismatch_panics() {
        let mut t = sample();
        t.push(Record::new(2, vec!["only one".into()]));
    }

    #[test]
    fn infer_types_per_column() {
        let t = sample();
        let types = t.infer_types();
        assert_eq!(types[1], AttrType::Numeric);
        assert!(matches!(types[0], AttrType::StrShort | AttrType::StrMedium));
    }

    #[test]
    fn null_fractions_counted() {
        let mut t = Table::new("n", Schema::new(["a"]));
        t.push(Record::new(0, vec![Value::Null]));
        t.push(Record::new(1, vec!["x".into()]));
        assert_eq!(t.null_fractions(), vec![0.5]);
    }

    #[test]
    fn joint_inference_uses_both_sides() {
        let schema = Schema::new(["v"]);
        let mut l = Table::new("l", schema.clone());
        let mut r = Table::new("r", schema);
        // Left side alone looks numeric; right side makes it stringy.
        l.push(Record::new(0, vec![Value::Int(1)]));
        r.push(Record::new(0, vec!["some words here and there".into()]));
        r.push(Record::new(1, vec!["more words in this one too".into()]));
        r.push(Record::new(2, vec!["and a third stringy value".into()]));
        let joint = infer_joint_types(&l, &r);
        assert_ne!(joint[0], AttrType::Numeric);
    }
}
