//! Dynamically typed cell values.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A cell value in a relation.
///
/// ER benchmark data is messy: numeric columns contain blanks, year
/// columns contain strings, and so on. `Value` keeps the original
/// representation and lets the type-inference and feature layers decide
/// how to interpret it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// A (possibly empty) string.
    Str(String),
    /// A 64-bit integer.
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// Missing / unknown.
    Null,
}

impl Value {
    /// Parses a raw text field: empty → [`Value::Null`], integral →
    /// [`Value::Int`], numeric → [`Value::Float`], otherwise
    /// [`Value::Str`].
    pub fn parse(raw: &str) -> Value {
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            return Value::Null;
        }
        if let Ok(i) = trimmed.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(f) = trimmed.parse::<f64>() {
            return Value::Float(f);
        }
        Value::Str(trimmed.to_string())
    }

    /// Whether this value is missing.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// String view: the contained string, or the canonical textual form of
    /// a number; `None` for nulls.
    pub fn as_text(&self) -> Option<String> {
        match self {
            Value::Str(s) => Some(s.clone()),
            Value::Int(i) => Some(i.to_string()),
            Value::Float(f) => Some(format!("{f}")),
            Value::Null => None,
        }
    }

    /// Numeric view: the number, or a parse of the string; `None` when not
    /// interpretable as a number.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Str(s) => s.trim().parse().ok(),
            Value::Null => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Null => Ok(()),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_dispatches_on_content() {
        assert_eq!(Value::parse(""), Value::Null);
        assert_eq!(Value::parse("   "), Value::Null);
        assert_eq!(Value::parse("42"), Value::Int(42));
        assert_eq!(Value::parse("-7"), Value::Int(-7));
        assert_eq!(Value::parse("3.25"), Value::Float(3.25));
        assert_eq!(Value::parse("hello"), Value::Str("hello".into()));
        assert_eq!(Value::parse(" hi there "), Value::Str("hi there".into()));
    }

    #[test]
    fn as_number_coerces_strings() {
        assert_eq!(Value::Str("19.99".into()).as_number(), Some(19.99));
        assert_eq!(Value::Int(3).as_number(), Some(3.0));
        assert_eq!(Value::Str("abc".into()).as_number(), None);
        assert_eq!(Value::Null.as_number(), None);
    }

    #[test]
    fn as_text_renders_numbers() {
        assert_eq!(Value::Int(5).as_text(), Some("5".into()));
        assert_eq!(Value::Float(1.5).as_text(), Some("1.5".into()));
        assert_eq!(Value::Null.as_text(), None);
    }

    #[test]
    fn display_roundtrip() {
        assert_eq!(Value::Str("x".into()).to_string(), "x");
        assert_eq!(Value::Null.to_string(), "");
    }
}
