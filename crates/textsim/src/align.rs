//! Global and local sequence alignment similarities.
//!
//! Magellan applies Needleman-Wunsch and Smith-Waterman to short string
//! attributes. We use unit match reward, zero mismatch reward and a gap
//! cost of 0.5, then normalize by the length of the shorter string so the
//! result lands in `[0, 1]` — the same normalization py_stringmatching
//! applies.

use crate::scratch::SimScratch;

/// Score parameters shared by both aligners.
const MATCH: f64 = 1.0;
const MISMATCH: f64 = 0.0;
const GAP: f64 = -0.5;

/// Needleman-Wunsch global alignment similarity, normalized to `[0, 1]`
/// by `min(|a|, |b|)`. Two empty strings score 1.
pub fn needleman_wunsch(a: &str, b: &str) -> f64 {
    needleman_wunsch_with(&mut SimScratch::new(), a, b)
}

/// [`needleman_wunsch`] reusing `scratch`'s char and DP-row buffers;
/// bit-identical to the allocating form (same operation sequence).
pub fn needleman_wunsch_with(scratch: &mut SimScratch, a: &str, b: &str) -> f64 {
    let mut ac = std::mem::take(&mut scratch.a_chars);
    let mut bc = std::mem::take(&mut scratch.b_chars);
    let mut prev = std::mem::take(&mut scratch.frow_a);
    let mut curr = std::mem::take(&mut scratch.frow_b);
    ac.clear();
    ac.extend(a.chars());
    bc.clear();
    bc.extend(b.chars());
    let sim = if ac.is_empty() && bc.is_empty() {
        1.0
    } else if ac.is_empty() || bc.is_empty() {
        0.0
    } else {
        prev.clear();
        prev.extend((0..=bc.len()).map(|j| j as f64 * GAP));
        curr.clear();
        curr.resize(bc.len() + 1, 0.0);
        for (i, &ca) in ac.iter().enumerate() {
            curr[0] = (i + 1) as f64 * GAP;
            for (j, &cb) in bc.iter().enumerate() {
                let sub = prev[j] + if ca == cb { MATCH } else { MISMATCH };
                curr[j + 1] = sub.max(prev[j + 1] + GAP).max(curr[j] + GAP);
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        let raw = prev[bc.len()];
        (raw / ac.len().min(bc.len()) as f64).clamp(0.0, 1.0)
    };
    scratch.a_chars = ac;
    scratch.b_chars = bc;
    scratch.frow_a = prev;
    scratch.frow_b = curr;
    sim
}

/// Smith-Waterman local alignment similarity, normalized to `[0, 1]` by
/// `min(|a|, |b|)`. Finds the best-matching substring pair, so it is
/// robust to long surrounding noise (product descriptions). Two empty
/// strings score 1.
pub fn smith_waterman(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut prev = vec![0.0f64; b.len() + 1];
    let mut curr = vec![0.0f64; b.len() + 1];
    let mut best = 0.0f64;
    for &ca in &a {
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + if ca == cb { MATCH } else { MISMATCH };
            let v = sub.max(prev[j + 1] + GAP).max(curr[j] + GAP).max(0.0);
            curr[j + 1] = v;
            best = best.max(v);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    (best / a.len().min(b.len()) as f64).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings_score_one() {
        assert_eq!(needleman_wunsch("hello", "hello"), 1.0);
        assert_eq!(smith_waterman("hello", "hello"), 1.0);
    }

    #[test]
    fn empty_string_conventions() {
        assert_eq!(needleman_wunsch("", ""), 1.0);
        assert_eq!(needleman_wunsch("", "x"), 0.0);
        assert_eq!(smith_waterman("", ""), 1.0);
        assert_eq!(smith_waterman("x", ""), 0.0);
    }

    #[test]
    fn smith_waterman_finds_local_match_in_noise() {
        // "acme" embedded in noise should still score 1.0 locally.
        let sim = smith_waterman("acme", "zzzzacmezzzz");
        assert_eq!(sim, 1.0);
        // Needleman-Wunsch (global) must penalize the surrounding noise to
        // below the local score.
        assert!(needleman_wunsch("acme", "zzzzacmezzzz") < sim);
    }

    #[test]
    fn disjoint_strings_score_low() {
        assert!(smith_waterman("abc", "xyz") < 0.5);
        assert!(needleman_wunsch("abc", "xyz") < 0.5);
    }

    #[test]
    fn results_are_in_unit_range() {
        for (a, b) in [
            ("a", "ab"),
            ("kitten", "sitting"),
            ("ab", "ba"),
            ("x", "yyyyy"),
        ] {
            for f in [needleman_wunsch, smith_waterman] {
                let v = f(a, b);
                assert!((0.0..=1.0).contains(&v), "{a} vs {b} gave {v}");
            }
        }
    }

    #[test]
    fn symmetric_inputs() {
        for (a, b) in [("kitten", "sitting"), ("abc", "abd")] {
            assert!((needleman_wunsch(a, b) - needleman_wunsch(b, a)).abs() < 1e-12);
            assert!((smith_waterman(a, b) - smith_waterman(b, a)).abs() < 1e-12);
        }
    }
}
