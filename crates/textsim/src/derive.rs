//! The record-derivation layer: every derived form of a record, computed
//! in **one pass** over its raw values.
//!
//! Historically the pipeline tokenized each record up to three times —
//! the batch table cache, the streaming record cache, and blocking-key
//! extraction each re-ran `normalize`/`words`/`qgrams` on the raw
//! strings. This module is now the single place raw attribute text is
//! tokenized: one `normalize` per value into a reusable buffer, then the
//! word bag, the 3-gram bag (the feature layer's `qgm_3` tokenizer), the
//! numeric interpretation, and — for the configured blocking attribute —
//! the blocking keys, all from that one normalized form. Everything
//! downstream (feature generation, batch blockers, streaming indexes)
//! consumes the resulting [`DerivedRecord`]s.
//!
//! ## Determinism constraints (parallel ingest)
//!
//! Tokens are interned into a shared [`Interner`], whose symbol
//! numbering is the first-intern order. The streaming subsystem derives
//! batches on a worker pool, which would race on that order, so workers
//! use a [`ScratchDeriver`]: reads resolve against a *frozen* snapshot
//! of the store's interner, and unseen tokens get worker-local scratch
//! symbols (high bit set) plus a per-record first-occurrence list. A
//! single writer then commits records **in ingest order**
//! ([`ScratchDerived::commit`]), interning each record's fresh tokens in
//! exactly the order sequential derivation would have — so the global
//! interner passes through the identical sequence of states for any
//! worker count, and every committed bag is bit-for-bit the sequential
//! one. Shard routing never depends on symbol numbering at all: it
//! hashes the token *text* with FNV-1a ([`Interner::text_hash`]).

use crate::intern::{fnv1a, InternSink, Interner, Sym, LOCAL_BIT};
use crate::tokenize::{normalize_into, qgrams_from_norm, TokenBag};
use std::collections::HashMap;
use zeroer_tabular::Value;

/// Which blocking keys the derivation pass should extract alongside the
/// feature bags.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSpec {
    /// Attribute index used as the blocking key.
    pub attr: usize,
    /// q-gram size for q-gram blocking keys (0 disables them).
    pub qgram: usize,
    /// Whether to intern the full normalized value as an
    /// attribute-equivalence key.
    pub equiv: bool,
}

/// Derivation configuration. The default extracts no blocking keys
/// (feature bags only).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeriveConfig {
    /// Blocking-key extraction, if any.
    pub block: Option<BlockSpec>,
}

impl DeriveConfig {
    /// Keys for token (+ optional q-gram) blocking on `attr`.
    pub fn blocking(attr: usize, qgram: usize) -> Self {
        Self {
            block: Some(BlockSpec {
                attr,
                qgram,
                equiv: false,
            }),
        }
    }
}

/// One attribute's derived forms.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrDerived {
    /// Lowercased textual form (empty for nulls; see `present`).
    pub text: String,
    /// Word token bag.
    pub word: TokenBag,
    /// 3-gram token bag.
    pub qgm3: TokenBag,
    /// Numeric interpretation, when available.
    pub number: Option<f64>,
    /// Whether the original value was non-null.
    pub present: bool,
}

/// Borrowed view of one attribute's derived forms — the currency of the
/// feature layer's similarity kernel.
#[derive(Debug, Clone, Copy)]
pub struct AttrView<'a> {
    /// Lowercased textual form (empty for nulls).
    pub text: &'a str,
    /// 3-gram token bag.
    pub qgm3: &'a TokenBag,
    /// Word token bag.
    pub word: &'a TokenBag,
    /// Numeric interpretation, when available.
    pub number: Option<f64>,
    /// Whether the original value was non-null.
    pub present: bool,
}

/// Blocking keys of one record (empty when the key attribute is null —
/// null rows never block). Symbol lists are sorted and deduplicated.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KeySet {
    /// Word-token keys: tokens longer than one byte (single characters
    /// are noise).
    pub tokens: Vec<Sym>,
    /// Character q-gram keys.
    pub qgrams: Vec<Sym>,
    /// The normalized-equality key used by attribute-equivalence
    /// blocking.
    pub equiv: Option<Sym>,
}

/// All derived forms of one record: per-attribute feature forms plus the
/// blocking keys the [`DeriveConfig`] asked for.
#[derive(Debug, Clone, PartialEq)]
pub struct DerivedRecord {
    attrs: Box<[AttrDerived]>,
    keys: KeySet,
}

impl DerivedRecord {
    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// One attribute's derived forms.
    pub fn attr(&self, a: usize) -> &AttrDerived {
        &self.attrs[a]
    }

    /// View of attribute `a`'s derived forms.
    pub fn view(&self, a: usize) -> AttrView<'_> {
        let e = &self.attrs[a];
        AttrView {
            text: &e.text,
            qgm3: &e.qgm3,
            word: &e.word,
            number: e.number,
            present: e.present,
        }
    }

    /// The record's blocking keys.
    pub fn keys(&self) -> &KeySet {
        &self.keys
    }

    /// A zero-arity placeholder derivation. The streaming store swaps
    /// this in for retracted records at compaction time to release their
    /// token bags; a retracted record's derivation is never read again
    /// (retraction captures its blocking keys up front and candidates
    /// are filtered to live records).
    pub fn empty() -> Self {
        Self {
            attrs: Box::new([]),
            keys: KeySet::default(),
        }
    }

    /// Approximate heap bytes this derivation owns (attribute texts,
    /// token-bag entries, blocking-key symbols) — what compaction
    /// reclaims when it clears a retracted record's derivation.
    pub fn heap_bytes(&self) -> usize {
        let sym_entry = std::mem::size_of::<(Sym, u32)>();
        let mut bytes = 0;
        for a in self.attrs.iter() {
            bytes += a.text.capacity();
            bytes += (a.word.len() + a.qgm3.len()) * sym_entry;
        }
        bytes += (self.keys.tokens.len() + self.keys.qgrams.len()) * std::mem::size_of::<Sym>();
        bytes
    }
}

/// Reusable scratch buffers for the derivation pass.
#[derive(Debug, Clone, Default)]
struct DeriveBufs {
    norm: String,
    chars: Vec<char>,
    tok: String,
    syms: Vec<Sym>,
    key_toks: Vec<Sym>,
}

/// The single-pass derivation core, generic over the intern sink so the
/// sequential ([`Deriver`]) and worker-local ([`ScratchDeriver`]) paths
/// run exactly the same token stream in exactly the same order.
fn derive_record<S: InternSink>(
    sink: &mut S,
    bufs: &mut DeriveBufs,
    cfg: &DeriveConfig,
    values: &[Value],
) -> DerivedRecord {
    let mut attrs = Vec::with_capacity(values.len());
    let mut keys = KeySet::default();
    for (a, v) in values.iter().enumerate() {
        let text = v.as_text();
        let present = text.is_some();
        let t = text.unwrap_or_default();
        normalize_into(&t, &mut bufs.norm);
        let key_spec = cfg.block.as_ref().filter(|b| b.attr == a && present);

        // Word tokens (and token keys for the blocking attribute) in one
        // sweep over the normalized buffer.
        bufs.syms.clear();
        bufs.key_toks.clear();
        for tok in bufs.norm.split(' ') {
            if tok.is_empty() {
                continue;
            }
            let s = sink.intern_token(tok);
            bufs.syms.push(s);
            if key_spec.is_some() && tok.len() > 1 {
                bufs.key_toks.push(s);
            }
        }
        let word = TokenBag::from_sym_buf(&mut bufs.syms);

        // 3-gram bag (the feature layer's qgm_3 tokenizer), windows over
        // the same normalized buffer.
        qgrams_from_norm(
            sink,
            &bufs.norm,
            3,
            &mut bufs.chars,
            &mut bufs.tok,
            &mut bufs.syms,
        );
        let qgm3 = TokenBag::from_sym_buf(&mut bufs.syms);

        if let Some(spec) = key_spec {
            bufs.key_toks.sort_unstable();
            bufs.key_toks.dedup();
            keys.tokens = bufs.key_toks.clone();
            if spec.qgram == 3 {
                // The key q-grams *are* the feature 3-grams: reuse.
                keys.qgrams = qgm3.syms().collect();
            } else if spec.qgram > 0 {
                qgrams_from_norm(
                    sink,
                    &bufs.norm,
                    spec.qgram,
                    &mut bufs.chars,
                    &mut bufs.tok,
                    &mut bufs.syms,
                );
                bufs.syms.sort_unstable();
                bufs.syms.dedup();
                keys.qgrams = bufs.syms.clone();
                bufs.syms.clear();
            }
            if spec.equiv {
                keys.equiv = Some(sink.intern_token(&bufs.norm));
            }
        }

        attrs.push(AttrDerived {
            text: if present {
                t.to_lowercase()
            } else {
                String::new()
            },
            word,
            qgm3,
            number: v.as_number(),
            present,
        });
    }
    DerivedRecord {
        attrs: attrs.into_boxed_slice(),
        keys,
    }
}

/// The sequential deriver: owns the global [`Interner`] and the scratch
/// buffers, and derives records one at a time.
#[derive(Debug, Clone, Default)]
pub struct Deriver {
    interner: Interner,
    cfg: DeriveConfig,
    bufs: DeriveBufs,
}

impl Deriver {
    /// A fresh deriver with an empty interner.
    pub fn new(cfg: DeriveConfig) -> Self {
        Self {
            interner: Interner::new(),
            cfg,
            bufs: DeriveBufs::default(),
        }
    }

    /// A deriver continuing an existing interner (e.g. one handed over
    /// from the bootstrap featurizer to the streaming store).
    pub fn with_interner(interner: Interner, cfg: DeriveConfig) -> Self {
        Self {
            interner,
            cfg,
            bufs: DeriveBufs::default(),
        }
    }

    /// Derives all forms of one record's values.
    pub fn derive(&mut self, values: &[Value]) -> DerivedRecord {
        derive_record(&mut self.interner, &mut self.bufs, &self.cfg, values)
    }

    /// Derives *only* the blocking keys of one attribute value — the
    /// light path for standalone batch blockers that never featurize.
    pub fn derive_keys(&mut self, text: Option<&str>, qgram: usize, equiv: bool) -> KeySet {
        let mut keys = KeySet::default();
        let Some(t) = text else {
            return keys;
        };
        normalize_into(t, &mut self.bufs.norm);
        self.bufs.key_toks.clear();
        for tok in self.bufs.norm.split(' ') {
            if tok.len() > 1 {
                self.bufs.key_toks.push(self.interner.intern(tok));
            }
        }
        self.bufs.key_toks.sort_unstable();
        self.bufs.key_toks.dedup();
        keys.tokens = std::mem::take(&mut self.bufs.key_toks);
        if qgram > 0 {
            qgrams_from_norm(
                &mut self.interner,
                &self.bufs.norm,
                qgram,
                &mut self.bufs.chars,
                &mut self.bufs.tok,
                &mut self.bufs.syms,
            );
            self.bufs.syms.sort_unstable();
            self.bufs.syms.dedup();
            keys.qgrams = std::mem::take(&mut self.bufs.syms);
        }
        if equiv {
            keys.equiv = Some(self.interner.intern(&self.bufs.norm));
        }
        keys
    }

    /// The interner.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Mutable interner access (the streaming commit path interns fresh
    /// tokens of scratch-derived records here).
    pub fn interner_mut(&mut self) -> &mut Interner {
        &mut self.interner
    }

    /// Consumes the deriver, yielding the interner.
    pub fn into_interner(self) -> Interner {
        self.interner
    }

    /// The derivation configuration.
    pub fn config(&self) -> &DeriveConfig {
        &self.cfg
    }
}

/// Worker-local scratch symbol table: tokens missing from the frozen
/// base interner get local ids (tagged with the high bit).
#[derive(Debug, Default)]
struct ScratchTable {
    map: HashMap<u64, Vec<u32>>,
    texts: Vec<String>,
    /// Local ids first assigned while deriving the *current* record, in
    /// assignment order — drained into [`ScratchDerived::fresh`].
    fresh: Vec<u32>,
}

struct ScratchSink<'a, 'b> {
    base: &'a Interner,
    table: &'b mut ScratchTable,
}

impl InternSink for ScratchSink<'_, '_> {
    fn intern_token(&mut self, s: &str) -> Sym {
        if let Some(sym) = self.base.get(s) {
            return sym;
        }
        let h = fnv1a(s);
        if let Some(ids) = self.table.map.get(&h) {
            for &i in ids {
                if self.table.texts[i as usize] == s {
                    return Sym(LOCAL_BIT | i);
                }
            }
        }
        let id = self.table.texts.len() as u32;
        assert!(id < LOCAL_BIT, "scratch interner overflow");
        self.table.texts.push(s.to_string());
        self.table.map.entry(h).or_default().push(id);
        self.table.fresh.push(id);
        Sym(LOCAL_BIT | id)
    }
}

/// A worker's deriver: resolves tokens against a frozen snapshot of the
/// global interner, parking unseen tokens in a local scratch table. The
/// produced [`ScratchDerived`] records must be committed in ingest order
/// by the single writer.
#[derive(Debug)]
pub struct ScratchDeriver<'a> {
    base: &'a Interner,
    cfg: DeriveConfig,
    bufs: DeriveBufs,
    table: ScratchTable,
}

impl<'a> ScratchDeriver<'a> {
    /// A scratch deriver over a frozen interner snapshot.
    pub fn new(base: &'a Interner, cfg: DeriveConfig) -> Self {
        Self {
            base,
            cfg,
            bufs: DeriveBufs::default(),
            table: ScratchTable::default(),
        }
    }

    /// Derives one record; fresh (base-unknown) tokens get scratch-local
    /// symbols recorded in the result's first-occurrence list.
    pub fn derive(&mut self, values: &[Value]) -> ScratchDerived {
        let rec = derive_record(
            &mut ScratchSink {
                base: self.base,
                table: &mut self.table,
            },
            &mut self.bufs,
            &self.cfg,
            values,
        );
        ScratchDerived {
            rec,
            fresh: std::mem::take(&mut self.table.fresh),
        }
    }

    /// Consumes the deriver, yielding the scratch token texts (indexed
    /// by local id) needed to commit its records.
    pub fn into_texts(self) -> Vec<String> {
        self.table.texts
    }
}

/// A record derived by a [`ScratchDeriver`], awaiting commit into the
/// global interner.
#[derive(Debug)]
pub struct ScratchDerived {
    rec: DerivedRecord,
    /// Scratch-local ids first assigned while deriving this record, in
    /// assignment order — the exact order sequential derivation would
    /// have interned them.
    fresh: Vec<u32>,
}

#[inline]
fn remap(sym: Sym, map: &[Option<Sym>]) -> Sym {
    if sym.0 & LOCAL_BIT != 0 {
        map[(sym.0 & !LOCAL_BIT) as usize].expect("scratch token committed before use")
    } else {
        sym
    }
}

fn rebind_bag(bag: &TokenBag, map: &[Option<Sym>]) -> TokenBag {
    let entries: Vec<(Sym, u32)> = bag.iter().map(|(s, c)| (remap(s, map), c)).collect();
    TokenBag::from_entries(entries, bag.len() as u32)
}

fn rebind_syms(syms: &mut [Sym], map: &[Option<Sym>]) {
    for s in syms.iter_mut() {
        *s = remap(*s, map);
    }
    syms.sort_unstable();
}

impl ScratchDerived {
    /// Commits this record into the global interner: interns its fresh
    /// tokens in first-occurrence order (reproducing the sequential
    /// symbol numbering exactly) and rewrites all scratch-local symbols.
    ///
    /// `texts` are the worker's scratch texts ([`ScratchDeriver::into_texts`])
    /// and `map` is the worker's local→global table, sized to `texts`
    /// and shared across that worker's records; records must be
    /// committed in ingest order.
    pub fn commit(
        self,
        texts: &[String],
        map: &mut [Option<Sym>],
        interner: &mut Interner,
    ) -> DerivedRecord {
        for &lid in &self.fresh {
            map[lid as usize] = Some(interner.intern(&texts[lid as usize]));
        }
        let mut rec = self.rec;
        let needs = |bag: &TokenBag| bag.entries().iter().any(|&(s, _)| s.0 & LOCAL_BIT != 0);
        for a in rec.attrs.iter_mut() {
            if needs(&a.word) {
                a.word = rebind_bag(&a.word, map);
            }
            if needs(&a.qgm3) {
                a.qgm3 = rebind_bag(&a.qgm3, map);
            }
        }
        if rec.keys.tokens.iter().any(|s| s.0 & LOCAL_BIT != 0) {
            rebind_syms(&mut rec.keys.tokens, map);
        }
        if rec.keys.qgrams.iter().any(|s| s.0 & LOCAL_BIT != 0) {
            rebind_syms(&mut rec.keys.qgrams, map);
        }
        if let Some(e) = rec.keys.equiv {
            rec.keys.equiv = Some(remap(e, map));
        }
        rec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::{qgrams, words};

    fn cfg4() -> DeriveConfig {
        DeriveConfig::blocking(0, 4)
    }

    #[test]
    fn derivation_tracks_presence_text_and_numbers() {
        let mut d = Deriver::new(DeriveConfig::default());
        let rec = d.derive(&["Alpha Beta".into(), Value::Int(1999)]);
        assert_eq!(rec.arity(), 2);
        assert!(rec.attr(0).present);
        assert_eq!(rec.attr(0).text, "alpha beta");
        assert_eq!(rec.attr(0).word.count_text(d.interner(), "alpha"), 1);
        assert_eq!(rec.attr(1).number, Some(1999.0));

        let nul = d.derive(&[Value::Null, "2001".into()]);
        assert!(!nul.attr(0).present);
        assert!(nul.attr(0).word.is_empty());
        assert_eq!(nul.attr(1).number, Some(2001.0));
    }

    #[test]
    fn derived_bags_match_convenience_tokenizers() {
        let mut d = Deriver::new(cfg4());
        let rec = d.derive(&["Golden Dragon, Palace!".into()]);
        let mut check = Interner::new();
        let w = words(&mut check, "Golden Dragon, Palace!");
        let q = qgrams(&mut check, "Golden Dragon, Palace!", 3);
        assert_eq!(rec.attr(0).word.distinct(), w.distinct());
        assert_eq!(rec.attr(0).word.len(), w.len());
        assert_eq!(rec.attr(0).qgm3.distinct(), q.distinct());
        assert_eq!(rec.attr(0).qgm3.len(), q.len());
    }

    #[test]
    fn keys_filter_single_characters_and_dedup() {
        let mut d = Deriver::new(DeriveConfig::blocking(0, 0));
        let rec = d.derive(&["a Red RED fox".into()]);
        let texts: Vec<&str> = rec
            .keys()
            .tokens
            .iter()
            .map(|&s| d.interner().resolve(s))
            .collect();
        let mut sorted = texts.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(texts.len(), sorted.len(), "keys deduplicated");
        assert!(texts.contains(&"red") && texts.contains(&"fox"));
        assert!(!texts.contains(&"a"), "single characters are noise");
    }

    #[test]
    fn null_key_attribute_yields_no_keys() {
        let mut d = Deriver::new(cfg4());
        let rec = d.derive(&[Value::Null, "other".into()]);
        assert!(rec.keys().tokens.is_empty());
        assert!(rec.keys().qgrams.is_empty());
        assert!(rec.keys().equiv.is_none());
    }

    #[test]
    fn qgram3_keys_reuse_the_feature_bag() {
        let mut d = Deriver::new(DeriveConfig::blocking(0, 3));
        let rec = d.derive(&["abc".into()]);
        let bag_syms: Vec<Sym> = rec.attr(0).qgm3.syms().collect();
        assert_eq!(rec.keys().qgrams, bag_syms);
    }

    #[test]
    fn derive_keys_matches_record_derivation() {
        let text = "Efficient Query-Processing";
        let mut a = Deriver::new(cfg4());
        let rec = a.derive(&[text.into()]);
        let mut b = Deriver::new(DeriveConfig::default());
        let ks = b.derive_keys(Some(text), 4, false);
        let of = |it: &Interner, syms: &[Sym]| -> Vec<String> {
            syms.iter().map(|&s| it.resolve(s).to_string()).collect()
        };
        assert_eq!(
            of(a.interner(), &rec.keys().tokens),
            of(b.interner(), &ks.tokens)
        );
        let mut qa = of(a.interner(), &rec.keys().qgrams);
        let mut qb = of(b.interner(), &ks.qgrams);
        qa.sort();
        qb.sort();
        assert_eq!(qa, qb);
    }

    #[test]
    fn scratch_commit_reproduces_sequential_derivation_exactly() {
        let rows: Vec<Vec<Value>> = vec![
            vec!["golden dragon palace".into(), Value::Int(1999)],
            vec!["blue sky tavern".into(), Value::Null],
            vec!["golden dragon palce".into(), Value::Int(1999)],
            vec![Value::Null, "2001".into()],
        ];
        // Sequential reference, continuing from a non-empty interner.
        let mut base = Interner::new();
        base.intern("golden");
        base.intern("sky");
        let mut seq = Deriver::with_interner(base.clone(), cfg4());
        let seq_recs: Vec<DerivedRecord> = rows.iter().map(|r| seq.derive(r)).collect();

        // Scratch path: derive everything against the frozen base, then
        // commit in order.
        let mut scratch = ScratchDeriver::new(&base, cfg4());
        let derived: Vec<ScratchDerived> = rows.iter().map(|r| scratch.derive(r)).collect();
        let texts = scratch.into_texts();
        let mut map = vec![None; texts.len()];
        let mut interner = base;
        let committed: Vec<DerivedRecord> = derived
            .into_iter()
            .map(|d| d.commit(&texts, &mut map, &mut interner))
            .collect();

        assert_eq!(committed, seq_recs, "bags and keys must be identical");
        assert_eq!(interner.len(), seq.interner().len());
        for i in 0..interner.len() {
            assert_eq!(
                interner.resolve(Sym(i as u32)),
                seq.interner().resolve(Sym(i as u32)),
                "symbol numbering must match sequential order"
            );
        }
    }
}
