//! Edit-distance-family measures: Levenshtein, Jaro, Jaro-Winkler.
//!
//! Each measure has two forms: an allocating convenience function and a
//! `*_with` variant that reuses a [`SimScratch`]'s buffers. The
//! convenience form delegates to the `*_with` form with a fresh scratch,
//! so both execute the same operation sequence and return bit-identical
//! results — the batched scoring path relies on this.

use crate::scratch::SimScratch;

/// Levenshtein (edit) distance between two strings, in Unicode scalar
/// values. Classic dynamic program with two rolling rows — O(|a|·|b|)
/// time, O(min(|a|,|b|)) space.
pub fn levenshtein(a: &str, b: &str) -> usize {
    levenshtein_with(&mut SimScratch::new(), a, b)
}

/// [`levenshtein`] reusing `scratch`'s char and DP-row buffers.
pub fn levenshtein_with(scratch: &mut SimScratch, a: &str, b: &str) -> usize {
    let mut ac = std::mem::take(&mut scratch.a_chars);
    let mut bc = std::mem::take(&mut scratch.b_chars);
    let mut prev = std::mem::take(&mut scratch.row_a);
    let mut curr = std::mem::take(&mut scratch.row_b);
    ac.clear();
    ac.extend(a.chars());
    bc.clear();
    bc.extend(b.chars());
    // Keep the shorter string in the inner dimension for memory.
    let (short, long) = if ac.len() <= bc.len() {
        (&ac, &bc)
    } else {
        (&bc, &ac)
    };
    let dist = if short.is_empty() {
        long.len()
    } else {
        prev.clear();
        prev.extend(0..=short.len());
        curr.clear();
        curr.resize(short.len() + 1, 0);
        for (i, &lc) in long.iter().enumerate() {
            curr[0] = i + 1;
            for (j, &sc) in short.iter().enumerate() {
                let cost = usize::from(lc != sc);
                curr[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(curr[j] + 1);
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        prev[short.len()]
    };
    scratch.a_chars = ac;
    scratch.b_chars = bc;
    scratch.row_a = prev;
    scratch.row_b = curr;
    dist
}

/// Normalized Levenshtein similarity: `1 − dist / max(|a|, |b|)` in
/// `[0, 1]`. Two empty strings are defined as maximally similar.
pub fn levenshtein_sim(a: &str, b: &str) -> f64 {
    levenshtein_sim_with(&mut SimScratch::new(), a, b)
}

/// [`levenshtein_sim`] reusing `scratch`'s buffers.
pub fn levenshtein_sim_with(scratch: &mut SimScratch, a: &str, b: &str) -> f64 {
    let la = a.chars().count();
    let lb = b.chars().count();
    let max = la.max(lb);
    if max == 0 {
        return 1.0;
    }
    1.0 - levenshtein_with(scratch, a, b) as f64 / max as f64
}

/// Jaro similarity in `[0, 1]`.
///
/// Matching window is `max(|a|,|b|)/2 − 1`; the score combines match count
/// and transposition count per the standard definition. Two empty strings
/// score 1; empty vs non-empty scores 0.
pub fn jaro(a: &str, b: &str) -> f64 {
    jaro_with(&mut SimScratch::new(), a, b)
}

/// [`jaro`] reusing `scratch`'s buffers.
pub fn jaro_with(scratch: &mut SimScratch, a: &str, b: &str) -> f64 {
    let mut ac = std::mem::take(&mut scratch.a_chars);
    let mut bc = std::mem::take(&mut scratch.b_chars);
    let mut b_used = std::mem::take(&mut scratch.used);
    let mut a_matched = std::mem::take(&mut scratch.matched_a);
    let mut b_matched = std::mem::take(&mut scratch.matched_b);
    ac.clear();
    ac.extend(a.chars());
    bc.clear();
    bc.extend(b.chars());
    let sim = 'done: {
        if ac.is_empty() && bc.is_empty() {
            break 'done 1.0;
        }
        if ac.is_empty() || bc.is_empty() {
            break 'done 0.0;
        }
        let window = (ac.len().max(bc.len()) / 2).saturating_sub(1);
        b_used.clear();
        b_used.resize(bc.len(), false);
        a_matched.clear();
        for (i, &ca) in ac.iter().enumerate() {
            let lo = i.saturating_sub(window);
            let hi = (i + window + 1).min(bc.len());
            for j in lo..hi {
                if !b_used[j] && bc[j] == ca {
                    b_used[j] = true;
                    a_matched.push(ca);
                    break;
                }
            }
        }
        let m = a_matched.len();
        if m == 0 {
            break 'done 0.0;
        }
        // Count transpositions: compare matched sequences in order.
        b_matched.clear();
        b_matched.extend(b_used.iter().zip(&bc).filter(|(u, _)| **u).map(|(_, &c)| c));
        let t = a_matched
            .iter()
            .zip(&b_matched)
            .filter(|(x, y)| x != y)
            .count()
            / 2;
        let m = m as f64;
        (m / ac.len() as f64 + m / bc.len() as f64 + (m - t as f64) / m) / 3.0
    };
    scratch.a_chars = ac;
    scratch.b_chars = bc;
    scratch.used = b_used;
    scratch.matched_a = a_matched;
    scratch.matched_b = b_matched;
    sim
}

/// Jaro-Winkler similarity: Jaro boosted by up to 4 characters of common
/// prefix with scaling factor `p = 0.1`. Range `[0, 1]`.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    jaro_winkler_with(&mut SimScratch::new(), a, b)
}

/// [`jaro_winkler`] reusing `scratch`'s buffers.
pub fn jaro_winkler_with(scratch: &mut SimScratch, a: &str, b: &str) -> f64 {
    const P: f64 = 0.1;
    const MAX_PREFIX: usize = 4;
    let j = jaro_with(scratch, a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(MAX_PREFIX)
        .take_while(|(x, y)| x == y)
        .count();
    (j + prefix as f64 * P * (1.0 - j)).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_textbook_cases() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn levenshtein_handles_unicode() {
        assert_eq!(levenshtein("café", "cafe"), 1);
        assert_eq!(levenshtein("日本語", "日本"), 1);
    }

    #[test]
    fn levenshtein_sim_range_and_edges() {
        assert_eq!(levenshtein_sim("", ""), 1.0);
        assert_eq!(levenshtein_sim("abc", ""), 0.0);
        assert!((levenshtein_sim("kitten", "sitting") - (1.0 - 3.0 / 7.0)).abs() < 1e-12);
    }

    #[test]
    fn jaro_textbook_cases() {
        // Standard reference values used across record-linkage literature.
        assert!((jaro("MARTHA", "MARHTA") - 0.944_444).abs() < 1e-5);
        assert!((jaro("DIXON", "DICKSONX") - 0.766_667).abs() < 1e-5);
        assert!((jaro("JELLYFISH", "SMELLYFISH") - 0.896_296).abs() < 1e-5);
    }

    #[test]
    fn jaro_disjoint_strings_score_zero() {
        assert_eq!(jaro("abc", "xyz"), 0.0);
    }

    #[test]
    fn jaro_winkler_textbook_cases() {
        assert!((jaro_winkler("MARTHA", "MARHTA") - 0.961_111).abs() < 1e-5);
        assert!((jaro_winkler("DIXON", "DICKSONX") - 0.813_333).abs() < 1e-5);
    }

    #[test]
    fn jaro_winkler_prefix_bonus_caps_at_four() {
        let long_prefix = jaro_winkler("abcdefgh", "abcdefxx");
        let four_prefix = jaro_winkler("abcdxxxx", "abcdyyyy");
        assert!(long_prefix <= 1.0);
        assert!(four_prefix <= 1.0);
    }

    #[test]
    fn empty_string_conventions() {
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("", "a"), 0.0);
        assert_eq!(jaro_winkler("", ""), 1.0);
    }
}

/// Hamming similarity on equal-length prefixes: the fraction of aligned
/// positions that agree, penalized by the length difference. Range
/// `[0, 1]`. Fast positional measure for code-like attributes (phone
/// numbers, zip codes).
pub fn hamming_sim(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let max = a.len().max(b.len());
    if max == 0 {
        return 1.0;
    }
    let agree = a.iter().zip(&b).filter(|(x, y)| x == y).count();
    agree as f64 / max as f64
}

/// Normalized common-prefix similarity: `|lcp(a, b)| / max(|a|, |b|)` in
/// `[0, 1]` — useful for hierarchical codes and truncated values.
pub fn prefix_sim(a: &str, b: &str) -> f64 {
    let la = a.chars().count();
    let lb = b.chars().count();
    let max = la.max(lb);
    if max == 0 {
        return 1.0;
    }
    let lcp = a.chars().zip(b.chars()).take_while(|(x, y)| x == y).count();
    lcp as f64 / max as f64
}

#[cfg(test)]
mod positional_tests {
    use super::*;

    #[test]
    fn hamming_counts_aligned_agreement() {
        assert_eq!(hamming_sim("abcd", "abcd"), 1.0);
        assert_eq!(hamming_sim("abcd", "abce"), 0.75);
        assert_eq!(hamming_sim("", ""), 1.0);
        assert_eq!(hamming_sim("abc", ""), 0.0);
        // Length difference is an implicit penalty.
        assert_eq!(hamming_sim("ab", "abcd"), 0.5);
    }

    #[test]
    fn prefix_sim_measures_common_prefix() {
        assert_eq!(prefix_sim("data", "database"), 0.5);
        assert_eq!(prefix_sim("same", "same"), 1.0);
        assert_eq!(prefix_sim("x", "y"), 0.0);
        assert_eq!(prefix_sim("", ""), 1.0);
    }
}
