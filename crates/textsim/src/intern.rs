//! Token interning: `Sym` ↔ token text.
//!
//! Every tokenizer in this crate resolves token text to a compact
//! [`Sym`] through an [`Interner`], so a token's heap string is stored
//! exactly once per corpus no matter how many bags, blocking keys,
//! inverted-index buckets, or shards mention it. Downstream set
//! operations ([`crate::tokenize::TokenBag`]) then compare 4-byte
//! symbols instead of hashing strings.
//!
//! ## Determinism
//!
//! Symbols are assigned densely in first-intern order, so a fixed
//! sequence of `intern` calls always yields the same numbering — the
//! property the streaming subsystem's parallel ingest relies on (workers
//! tokenize against a frozen interner snapshot and a single writer
//! commits fresh tokens in ingest order; see `zeroer_stream`).
//!
//! ## Stable hashing
//!
//! The interner also memoizes the 64-bit FNV-1a hash of every token's
//! *text* ([`Interner::text_hash`]). Shard routing in the streaming
//! subsystem must be identical across processes and interner histories,
//! so it hashes token text — never symbol ids — and this cache makes
//! that free at lookup time.

use std::collections::HashMap;

/// An interned token: a dense index into an [`Interner`].
///
/// Symbols are only meaningful relative to the interner that produced
/// them; comparing symbols from different interners is a logic error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(pub(crate) u32);

impl Sym {
    /// The dense index of this symbol in its interner.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Flag bit marking a *scratch-local* symbol produced by
/// [`crate::derive::ScratchDeriver`]; such symbols must be remapped into
/// the global interner before use (see `DerivedRecord::commit`).
pub(crate) const LOCAL_BIT: u32 = 1 << 31;

/// Stable 64-bit FNV-1a hash of a token's text. Deliberately *not*
/// `DefaultHasher`: consumers (shard routing, snapshot digests) need a
/// hash that is identical across processes, platforms, and std versions.
#[inline]
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in s.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append-only token table: text → [`Sym`] with first-seen-order symbol
/// assignment, plus the memoized FNV-1a text hash per symbol.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    strings: Vec<Box<str>>,
    hashes: Vec<u64>,
    /// text-hash → candidate symbol indices (collision chain).
    map: HashMap<u64, Vec<u32>>,
    bytes: usize,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its symbol (existing or freshly assigned).
    ///
    /// # Panics
    /// Panics if more than 2³¹ distinct tokens are interned.
    pub fn intern(&mut self, s: &str) -> Sym {
        let h = fnv1a(s);
        if let Some(ids) = self.map.get(&h) {
            for &i in ids {
                if &*self.strings[i as usize] == s {
                    return Sym(i);
                }
            }
        }
        let id = self.strings.len() as u32;
        assert!(id < LOCAL_BIT, "interner overflow: 2^31 distinct tokens");
        self.strings.push(s.into());
        self.hashes.push(h);
        self.bytes += s.len();
        self.map.entry(h).or_default().push(id);
        Sym(id)
    }

    /// Looks up an already-interned token without inserting.
    pub fn get(&self, s: &str) -> Option<Sym> {
        let ids = self.map.get(&fnv1a(s))?;
        ids.iter()
            .find(|&&i| &*self.strings[i as usize] == s)
            .map(|&i| Sym(i))
    }

    /// The text of a symbol.
    ///
    /// # Panics
    /// Panics on a symbol this interner did not produce (including
    /// uncommitted scratch-local symbols).
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym.0 as usize]
    }

    /// The memoized FNV-1a hash of the symbol's text
    /// (`== fnv1a(self.resolve(sym))`).
    pub fn text_hash(&self, sym: Sym) -> u64 {
        self.hashes[sym.0 as usize]
    }

    /// Number of distinct interned tokens.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Total bytes of distinct token text stored (each token once).
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

/// Anything tokens can be interned into: the global [`Interner`] or a
/// worker-local scratch table ([`crate::derive::ScratchDeriver`]).
pub trait InternSink {
    /// Interns one token.
    fn intern_token(&mut self, s: &str) -> Sym;
}

impl InternSink for Interner {
    #[inline]
    fn intern_token(&mut self, s: &str) -> Sym {
        self.intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut it = Interner::new();
        let a = it.intern("alpha");
        let b = it.intern("beta");
        assert_eq!(it.intern("alpha"), a);
        assert_ne!(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(it.len(), 2);
        assert_eq!(it.bytes(), "alpha".len() + "beta".len());
    }

    #[test]
    fn resolve_round_trips() {
        let mut it = Interner::new();
        let s = it.intern("token");
        assert_eq!(it.resolve(s), "token");
        assert_eq!(it.get("token"), Some(s));
        assert_eq!(it.get("missing"), None);
    }

    #[test]
    fn text_hash_matches_fnv1a() {
        let mut it = Interner::new();
        let s = it.intern("photograph");
        assert_eq!(it.text_hash(s), fnv1a("photograph"));
    }

    #[test]
    fn fnv1a_pinned_values() {
        // Shard routing depends on these exact values never changing.
        assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a("a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn symbols_assigned_in_first_seen_order() {
        let mut a = Interner::new();
        let mut b = Interner::new();
        for t in ["x", "y", "x", "z"] {
            a.intern(t);
        }
        for t in ["x", "y", "z"] {
            b.intern(t);
        }
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(a.resolve(Sym(i as u32)), b.resolve(Sym(i as u32)));
        }
    }
}
