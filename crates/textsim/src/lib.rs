//! String and numeric similarity measures for entity resolution, plus
//! the shared record-derivation layer.
//!
//! ZeroER consumes similarity feature vectors produced by applying a set of
//! similarity functions to each aligned attribute of a tuple pair (the
//! Magellan feature-generation process of §2.1). This crate implements the
//! measures Magellan's automatic feature generator uses:
//!
//! * token-based: Jaccard, cosine, Dice, overlap coefficient — over q-gram
//!   or word tokens ([`token`], [`tokenize`]);
//! * sequence-based: Levenshtein (plus normalized similarity), Jaro,
//!   Jaro-Winkler, Needleman-Wunsch, Smith-Waterman ([`edit`], [`align`]);
//! * hybrid: Monge-Elkan ([`token::monge_elkan`]);
//! * numeric / categorical: exact match, absolute-difference and
//!   relative-difference similarity ([`numeric`]).
//!
//! Tokens are interned ([`intern`]): a [`tokenize::TokenBag`] stores
//! sorted `(Sym, count)` pairs, so set operations are merge-joins over
//! 4-byte symbols instead of string-hash probes, and each distinct token
//! is stored once per corpus. The [`mod@derive`] module computes every
//! derived form of a record (normalized text, word bag, q-gram bag,
//! numeric form, blocking keys) in a single pass — the one place in the
//! workspace that tokenizes raw attribute text.
//!
//! All similarity functions return values in a documented range (almost
//! always `[0, 1]`, higher = more similar) and treat empty inputs
//! consistently: two empty strings are maximally similar, an empty and a
//! non-empty string are maximally dissimilar.

pub mod align;
pub mod derive;
pub mod edit;
pub mod intern;
pub mod numeric;
pub mod scratch;
pub mod tfidf;
pub mod token;
pub mod tokenize;

pub use align::needleman_wunsch_with;
pub use derive::{
    AttrDerived, AttrView, BlockSpec, DeriveConfig, DerivedRecord, Deriver, KeySet, ScratchDerived,
    ScratchDeriver,
};
pub use edit::{
    hamming_sim, jaro, jaro_winkler, jaro_winkler_with, jaro_with, levenshtein, levenshtein_sim,
    levenshtein_sim_with, levenshtein_with, prefix_sim,
};
pub use intern::{fnv1a, InternSink, Interner, Sym};
pub use numeric::{abs_diff_sim, exact_match, rel_diff_sim};
pub use scratch::SimScratch;
pub use tfidf::IdfModel;
pub use token::{cosine, dice, jaccard, monge_elkan, monge_elkan_with, overlap_coefficient};
pub use tokenize::{normalize, qgrams, words, TokenBag};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn short_ascii() -> impl Strategy<Value = String> {
        "[a-z0-9 ]{0,12}"
    }

    proptest! {
        #[test]
        fn levenshtein_is_a_metric(a in short_ascii(), b in short_ascii(), c in short_ascii()) {
            let ab = levenshtein(&a, &b);
            let ba = levenshtein(&b, &a);
            prop_assert_eq!(ab, ba, "symmetry");
            prop_assert_eq!(levenshtein(&a, &a), 0, "identity");
            let ac = levenshtein(&a, &c);
            let bc = levenshtein(&b, &c);
            prop_assert!(ac <= ab + bc, "triangle inequality");
        }

        #[test]
        fn similarities_are_in_unit_range(a in short_ascii(), b in short_ascii()) {
            let mut it = Interner::new();
            let ta = qgrams(&mut it, &a, 3);
            let tb = qgrams(&mut it, &b, 3);
            for v in [
                jaccard(&ta, &tb),
                cosine(&ta, &tb),
                dice(&ta, &tb),
                overlap_coefficient(&ta, &tb),
                levenshtein_sim(&a, &b),
                jaro(&a, &b),
                jaro_winkler(&a, &b),
            ] {
                prop_assert!((0.0..=1.0).contains(&v), "out of range: {v}");
            }
        }

        #[test]
        fn similarities_are_symmetric(a in short_ascii(), b in short_ascii()) {
            let mut it = Interner::new();
            let (ta, tb) = (qgrams(&mut it, &a, 3), qgrams(&mut it, &b, 3));
            prop_assert!((jaccard(&ta, &tb) - jaccard(&tb, &ta)).abs() < 1e-12);
            prop_assert!((cosine(&ta, &tb) - cosine(&tb, &ta)).abs() < 1e-12);
            prop_assert!((jaro(&a, &b) - jaro(&b, &a)).abs() < 1e-12);
            prop_assert!((jaro_winkler(&a, &b) - jaro_winkler(&b, &a)).abs() < 1e-12);
        }

        #[test]
        fn identical_strings_are_maximally_similar(a in "[a-z0-9]{1,12}") {
            let mut it = Interner::new();
            let t = qgrams(&mut it, &a, 3);
            prop_assert_eq!(jaccard(&t, &t), 1.0);
            prop_assert_eq!(levenshtein_sim(&a, &a), 1.0);
            prop_assert_eq!(jaro(&a, &a), 1.0);
            prop_assert_eq!(jaro_winkler(&a, &a), 1.0);
        }

        #[test]
        fn jaro_winkler_dominates_jaro(a in short_ascii(), b in short_ascii()) {
            prop_assert!(jaro_winkler(&a, &b) >= jaro(&a, &b) - 1e-12,
                "Winkler prefix bonus can only increase Jaro");
        }

        #[test]
        fn scratch_kernels_are_bit_identical(a in short_ascii(), b in short_ascii()) {
            // The `*_with` variants must reproduce the allocating forms
            // exactly — same bits, not within-epsilon — because the
            // batched scoring path swaps them in while the scalar path
            // keeps the allocating forms.
            let mut s = SimScratch::new();
            prop_assert_eq!(levenshtein_with(&mut s, &a, &b), levenshtein(&a, &b));
            prop_assert_eq!(
                levenshtein_sim_with(&mut s, &a, &b).to_bits(),
                levenshtein_sim(&a, &b).to_bits()
            );
            prop_assert_eq!(jaro_with(&mut s, &a, &b).to_bits(), jaro(&a, &b).to_bits());
            prop_assert_eq!(
                jaro_winkler_with(&mut s, &a, &b).to_bits(),
                jaro_winkler(&a, &b).to_bits()
            );
            prop_assert_eq!(
                needleman_wunsch_with(&mut s, &a, &b).to_bits(),
                align::needleman_wunsch(&a, &b).to_bits()
            );
            let mut it = Interner::new();
            let (ta, tb) = (words(&mut it, &a), words(&mut it, &b));
            prop_assert_eq!(
                monge_elkan_with(&mut s, &it, &ta, &tb).to_bits(),
                monge_elkan(&it, &ta, &tb).to_bits()
            );
            // Reuse across calls must not leak state between kernels.
            prop_assert_eq!(
                levenshtein_sim_with(&mut s, &b, &a).to_bits(),
                levenshtein_sim(&b, &a).to_bits()
            );
        }

        #[test]
        fn interned_set_ops_match_naive_string_sets(a in short_ascii(), b in short_ascii()) {
            use std::collections::BTreeSet;
            let mut it = Interner::new();
            let (ta, tb) = (words(&mut it, &a), words(&mut it, &b));
            let sa: BTreeSet<&str> = ta.tokens(&it).collect();
            let sb: BTreeSet<&str> = tb.tokens(&it).collect();
            prop_assert_eq!(ta.set_intersection(&tb), sa.intersection(&sb).count());
            prop_assert_eq!(ta.set_union(&tb), sa.union(&sb).count());
        }
    }
}
