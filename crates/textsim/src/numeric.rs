//! Numeric and categorical similarity measures.

/// Exact-match similarity: 1.0 if equal, 0.0 otherwise. Magellan applies
/// this to boolean and short categorical attributes.
pub fn exact_match<T: PartialEq>(a: &T, b: &T) -> f64 {
    if a == b {
        1.0
    } else {
        0.0
    }
}

/// Absolute-difference similarity for numeric attributes:
/// `1 − |a − b| / max(|a|, |b|)`, clamped to `[0, 1]`.
///
/// Two zeros are maximally similar; values of opposite sign degrade toward
/// zero similarity. NaN inputs yield 0 (treated as "unknown ≠ unknown",
/// imputation is handled upstream in the feature pipeline).
pub fn abs_diff_sim(a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() {
        return 0.0;
    }
    let denom = a.abs().max(b.abs());
    if denom == 0.0 {
        return 1.0;
    }
    (1.0 - (a - b).abs() / denom).clamp(0.0, 1.0)
}

/// Relative-difference similarity: `1 / (1 + |a − b| / (1 + min(|a|,|b|)))`
/// in `(0, 1]` — a smoother alternative that never hits exactly zero for
/// finite inputs, useful for attributes with heavy-tailed scales (prices).
pub fn rel_diff_sim(a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() {
        return 0.0;
    }
    1.0 / (1.0 + (a - b).abs() / (1.0 + a.abs().min(b.abs())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_on_strings_and_numbers() {
        assert_eq!(exact_match(&"a", &"a"), 1.0);
        assert_eq!(exact_match(&"a", &"b"), 0.0);
        assert_eq!(exact_match(&3, &3), 1.0);
    }

    #[test]
    fn abs_diff_identical_is_one() {
        assert_eq!(abs_diff_sim(5.0, 5.0), 1.0);
        assert_eq!(abs_diff_sim(0.0, 0.0), 1.0);
        assert_eq!(abs_diff_sim(-2.5, -2.5), 1.0);
    }

    #[test]
    fn abs_diff_known_values() {
        assert!((abs_diff_sim(10.0, 5.0) - 0.5).abs() < 1e-12);
        assert_eq!(abs_diff_sim(1.0, -1.0), 0.0);
        assert_eq!(abs_diff_sim(0.0, 7.0), 0.0);
    }

    #[test]
    fn abs_diff_nan_scores_zero() {
        assert_eq!(abs_diff_sim(f64::NAN, 1.0), 0.0);
        assert_eq!(abs_diff_sim(1.0, f64::NAN), 0.0);
    }

    #[test]
    fn rel_diff_monotone_in_gap() {
        let near = rel_diff_sim(100.0, 101.0);
        let far = rel_diff_sim(100.0, 200.0);
        assert!(near > far);
        assert_eq!(rel_diff_sim(3.0, 3.0), 1.0);
    }

    #[test]
    fn rel_diff_in_unit_range() {
        for (a, b) in [(0.0, 1e9), (-5.0, 5.0), (1e-9, 1e9)] {
            let v = rel_diff_sim(a, b);
            assert!((0.0..=1.0).contains(&v));
        }
    }
}
