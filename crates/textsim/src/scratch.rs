//! Reusable scratch buffers for the allocation-heavy sequence kernels.
//!
//! The DP measures (Levenshtein, Jaro-Winkler, Needleman-Wunsch) and the
//! hybrid Monge-Elkan each allocate several short-lived `Vec`s per call
//! — char buffers, DP rows, match flags. On the batched scoring hot path
//! those calls happen thousands of times per feature-column fill, and
//! the allocator traffic dominates the actual DP work for typical
//! attribute-length strings. [`SimScratch`] owns one set of buffers that
//! the `*_with` kernel variants reuse across calls; after the first few
//! calls the buffers have seen their maximum sizes and the kernels stop
//! allocating entirely.
//!
//! The `*_with` variants execute the **exact same operation sequence**
//! as their allocating counterparts (which delegate to them with a fresh
//! scratch), so results are bit-identical by construction — the property
//! the streaming subsystem's batched-vs-scalar parity suite locks in.

use crate::intern::Sym;

/// Scratch buffers shared by the `*_with` sequence-similarity kernels.
///
/// One instance per worker/batch is enough; the kernels fully reset the
/// buffers they use, so a scratch can be freely reused across different
/// measures and string lengths.
#[derive(Debug, Clone, Default)]
pub struct SimScratch {
    /// Left-side chars (Unicode scalar values).
    pub(crate) a_chars: Vec<char>,
    /// Right-side chars.
    pub(crate) b_chars: Vec<char>,
    /// Integer DP row (Levenshtein `prev`).
    pub(crate) row_a: Vec<usize>,
    /// Integer DP row (Levenshtein `curr`).
    pub(crate) row_b: Vec<usize>,
    /// Float DP row (alignment `prev`).
    pub(crate) frow_a: Vec<f64>,
    /// Float DP row (alignment `curr`).
    pub(crate) frow_b: Vec<f64>,
    /// Jaro per-position match flags for the right side.
    pub(crate) used: Vec<bool>,
    /// Jaro matched chars, left order.
    pub(crate) matched_a: Vec<char>,
    /// Jaro matched chars, right order.
    pub(crate) matched_b: Vec<char>,
    /// Monge-Elkan outer token symbols.
    pub(crate) syms: Vec<Sym>,
}

impl SimScratch {
    /// A fresh, empty scratch (no buffers allocated yet).
    pub fn new() -> Self {
        Self::default()
    }
}
