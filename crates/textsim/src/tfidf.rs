//! Corpus-weighted similarity: TF-IDF cosine and soft TF-IDF.
//!
//! Magellan applies TF-IDF cosine to long-text attributes when a corpus is
//! available. Unlike the set-based measures, these weight rare tokens more
//! heavily, which is exactly what helps on the product datasets where the
//! discriminative tokens (model numbers) are rare and the noise tokens
//! (marketing words) are common.

use crate::edit::jaro_winkler;
use crate::intern::{Interner, Sym};
use crate::tokenize::TokenBag;
use std::collections::HashMap;

/// Token document frequencies learned from a corpus of values; produces
/// IDF weights for the weighted similarity measures.
///
/// Document frequencies are keyed by interned symbol; fit the model and
/// score with bags from the same [`Interner`].
#[derive(Debug, Clone, Default)]
pub struct IdfModel {
    doc_freq: HashMap<Sym, u32>,
    num_docs: u32,
}

impl IdfModel {
    /// Builds the model from an iterator of token bags (one per document /
    /// attribute value).
    pub fn fit<'a, I: IntoIterator<Item = &'a TokenBag>>(bags: I) -> Self {
        let mut doc_freq: HashMap<Sym, u32> = HashMap::new();
        let mut num_docs = 0;
        for bag in bags {
            num_docs += 1;
            for sym in bag.syms() {
                *doc_freq.entry(sym).or_insert(0) += 1;
            }
        }
        Self { doc_freq, num_docs }
    }

    /// Number of documents the model was fit on.
    pub fn num_docs(&self) -> u32 {
        self.num_docs
    }

    /// Smoothed IDF weight of a token: `ln(1 + N / (1 + df))`.
    pub fn idf(&self, sym: Sym) -> f64 {
        let df = self.doc_freq.get(&sym).copied().unwrap_or(0);
        (1.0 + self.num_docs as f64 / (1.0 + df as f64)).ln()
    }

    /// IDF weight looked up by token text. Unseen tokens get the maximum
    /// weight (they are maximally discriminative by definition).
    pub fn idf_text(&self, interner: &Interner, token: &str) -> f64 {
        match interner.get(token) {
            Some(sym) => self.idf(sym),
            None => (1.0 + self.num_docs as f64).ln(),
        }
    }

    /// TF-IDF vector of a bag: `(sym, tf·idf)` in symbol order.
    fn weights(&self, bag: &TokenBag) -> Vec<(Sym, f64)> {
        bag.iter()
            .map(|(s, c)| (s, c as f64 * self.idf(s)))
            .collect()
    }

    /// TF-IDF cosine similarity between two bags in `[0, 1]`; empty bags
    /// follow the usual conventions (both empty → 1, one empty → 0).
    pub fn cosine(&self, a: &TokenBag, b: &TokenBag) -> f64 {
        if a.is_empty() && b.is_empty() {
            return 1.0;
        }
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        let wa = self.weights(a);
        let wb = self.weights(b);
        // Merge-join over the sorted weight vectors.
        let (mut i, mut j, mut dot) = (0, 0, 0.0);
        while i < wa.len() && j < wb.len() {
            match wa[i].0.cmp(&wb[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    dot += wa[i].1 * wb[j].1;
                    i += 1;
                    j += 1;
                }
            }
        }
        let na: f64 = wa.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
        let nb: f64 = wb.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            (dot / (na * nb)).clamp(0.0, 1.0)
        }
    }

    /// Soft TF-IDF (Cohen et al.): like TF-IDF cosine but tokens match
    /// *approximately* — a token of `a` pairs with its best Jaro-Winkler
    /// partner in `b` above `threshold`. Robust to typos inside rare
    /// discriminative tokens. Range `[0, 1]`. Both bags must come from
    /// `interner`.
    pub fn soft_cosine(
        &self,
        interner: &Interner,
        a: &TokenBag,
        b: &TokenBag,
        threshold: f64,
    ) -> f64 {
        if a.is_empty() && b.is_empty() {
            return 1.0;
        }
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        let wa = self.weights(a);
        let wb = self.weights(b);
        let mut dot = 0.0;
        for &(sa, weight_a) in &wa {
            let ta = interner.resolve(sa);
            // Best approximate partner in b.
            let mut best: Option<(f64, f64)> = None; // (sim, weight_b)
            for &(sb, weight_b) in &wb {
                let sim = if sa == sb {
                    1.0
                } else {
                    jaro_winkler(ta, interner.resolve(sb))
                };
                if sim >= threshold && best.is_none_or(|(s, _)| sim > s) {
                    best = Some((sim, weight_b));
                }
            }
            if let Some((sim, weight_b)) = best {
                dot += sim * weight_a * weight_b;
            }
        }
        let na: f64 = wa.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
        let nb: f64 = wb.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            (dot / (na * nb)).clamp(0.0, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::words;

    fn corpus() -> (Interner, IdfModel, Vec<TokenBag>) {
        let mut it = Interner::new();
        let docs: Vec<TokenBag> = [
            "premium wireless keyboard model k750",
            "premium wireless mouse model m310",
            "premium compact speaker model s220",
            "wireless compact keyboard model k750 deluxe",
        ]
        .iter()
        .map(|s| words(&mut it, s))
        .collect();
        let m = IdfModel::fit(&docs);
        (it, m, docs)
    }

    #[test]
    fn rare_tokens_get_higher_idf() {
        let (it, m, _) = corpus();
        assert!(
            m.idf_text(&it, "k750") > m.idf_text(&it, "premium"),
            "model number must outweigh the marketing word"
        );
        assert!(m.idf_text(&it, "neverseen") >= m.idf_text(&it, "k750"));
    }

    #[test]
    fn tfidf_cosine_favors_rare_token_overlap() {
        let (mut it, m, _) = corpus();
        // Shares the rare "k750" vs shares only the common "premium
        // wireless".
        let a = words(&mut it, "premium wireless keyboard model k750");
        let rare_match = words(&mut it, "compact keyboard k750");
        let common_match = words(&mut it, "premium wireless speaker s220");
        assert!(m.cosine(&a, &rare_match) > m.cosine(&a, &common_match));
    }

    #[test]
    fn cosine_bounds_and_identity() {
        let (mut it, m, docs) = corpus();
        for d in &docs {
            let s = m.cosine(d, d);
            assert!((s - 1.0).abs() < 1e-9, "self-similarity {s}");
        }
        let empty = words(&mut it, "");
        assert_eq!(m.cosine(&empty, &empty), 1.0);
        assert_eq!(m.cosine(&empty, &docs[0]), 0.0);
    }

    #[test]
    fn soft_cosine_survives_typos_in_rare_tokens() {
        let (mut it, m, _) = corpus();
        let a = words(&mut it, "premium keyboard k750");
        let typo = words(&mut it, "premium keybaord k750");
        let hard = m.cosine(&a, &typo);
        let soft = m.soft_cosine(&it, &a, &typo, 0.85);
        assert!(
            soft > hard,
            "soft ({soft}) must recover the typo'd token vs hard ({hard})"
        );
    }

    #[test]
    fn soft_cosine_threshold_gates_matches() {
        let (mut it, m, _) = corpus();
        let a = words(&mut it, "alpha");
        let b = words(&mut it, "omega");
        assert_eq!(m.soft_cosine(&it, &a, &b, 0.99), 0.0);
    }
}
