//! Token-based and hybrid similarity measures.

use crate::edit::{jaro_winkler, jaro_winkler_with};
use crate::intern::Interner;
use crate::scratch::SimScratch;
use crate::tokenize::TokenBag;

/// Jaccard similarity `|A ∩ B| / |A ∪ B|` over distinct tokens, in
/// `[0, 1]`. Two empty bags are maximally similar.
pub fn jaccard(a: &TokenBag, b: &TokenBag) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.set_intersection(b);
    let union = a.set_union(b);
    if union == 0 {
        return 0.0;
    }
    inter as f64 / union as f64
}

/// Set-based cosine similarity `|A ∩ B| / √(|A|·|B|)` over distinct
/// tokens (Magellan's `cos` for q-gram features), in `[0, 1]`.
pub fn cosine(a: &TokenBag, b: &TokenBag) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    a.set_intersection(b) as f64 / ((a.distinct() as f64) * (b.distinct() as f64)).sqrt()
}

/// Dice coefficient `2|A ∩ B| / (|A| + |B|)` over distinct tokens, in
/// `[0, 1]`.
pub fn dice(a: &TokenBag, b: &TokenBag) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let denom = a.distinct() + b.distinct();
    if denom == 0 {
        return 0.0;
    }
    2.0 * a.set_intersection(b) as f64 / denom as f64
}

/// Overlap coefficient `|A ∩ B| / min(|A|, |B|)` over distinct tokens, in
/// `[0, 1]`. Useful when one value is an abbreviation / subset of the
/// other.
pub fn overlap_coefficient(a: &TokenBag, b: &TokenBag) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let min = a.distinct().min(b.distinct());
    if min == 0 {
        return 0.0;
    }
    a.set_intersection(b) as f64 / min as f64
}

/// Monge-Elkan similarity: for each token of `a`, the best Jaro-Winkler
/// match among tokens of `b`, averaged. Range `[0, 1]`. Asymmetric by
/// definition; Magellan uses it as-is (first argument = left tuple).
///
/// Both bags must come from `interner`. The outer sum runs in canonical
/// token-*text* order, so the floating-point result is independent of
/// interner history and bag representation — the property the streaming
/// subsystem's bit-exact determinism tests rely on.
pub fn monge_elkan(interner: &Interner, a: &TokenBag, b: &TokenBag) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut a_toks: Vec<&str> = a.tokens(interner).collect();
    a_toks.sort_unstable();
    let mut total = 0.0;
    for ta in &a_toks {
        let best = b
            .tokens(interner)
            .map(|tb| jaro_winkler(ta, tb))
            .fold(0.0f64, f64::max);
        total += best;
    }
    total / a_toks.len() as f64
}

/// [`monge_elkan`] reusing `scratch`'s buffers for the outer token list
/// and every inner Jaro-Winkler call; bit-identical to the allocating
/// form. Sorting `a`'s *symbols* by their token text visits the same
/// outer sequence as sorting the texts themselves (distinct symbols
/// always resolve to distinct texts), so the summation order — and with
/// it every float operation — is unchanged.
pub fn monge_elkan_with(
    scratch: &mut SimScratch,
    interner: &Interner,
    a: &TokenBag,
    b: &TokenBag,
) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut syms = std::mem::take(&mut scratch.syms);
    syms.clear();
    syms.extend(a.syms());
    syms.sort_unstable_by(|&x, &y| interner.resolve(x).cmp(interner.resolve(y)));
    let mut total = 0.0;
    for &sa in &syms {
        let ta = interner.resolve(sa);
        let mut best = 0.0f64;
        for tb in b.tokens(interner) {
            best = best.max(jaro_winkler_with(scratch, ta, tb));
        }
        total += best;
    }
    let n = syms.len() as f64;
    scratch.syms = syms;
    total / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::words;

    fn bags(ss: &[&str]) -> (Interner, Vec<TokenBag>) {
        let mut it = Interner::new();
        let bags = ss.iter().map(|s| words(&mut it, s)).collect();
        (it, bags)
    }

    #[test]
    fn jaccard_known_values() {
        let (_, b) = bags(&["a b c", "b c d"]);
        assert!((jaccard(&b[0], &b[1]) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard(&b[0], &b[0]), 1.0);
    }

    #[test]
    fn jaccard_disjoint_is_zero() {
        let (_, b) = bags(&["a b", "x y"]);
        assert_eq!(jaccard(&b[0], &b[1]), 0.0);
    }

    #[test]
    fn empty_bag_conventions() {
        let (it, b) = bags(&["", "a"]);
        let (e, x) = (&b[0], &b[1]);
        assert_eq!(jaccard(e, e), 1.0);
        assert_eq!(jaccard(e, x), 0.0);
        assert_eq!(cosine(e, e), 1.0);
        assert_eq!(cosine(e, x), 0.0);
        assert_eq!(dice(e, e), 1.0);
        assert_eq!(overlap_coefficient(e, e), 1.0);
        assert_eq!(monge_elkan(&it, e, e), 1.0);
        assert_eq!(monge_elkan(&it, e, x), 0.0);
    }

    #[test]
    fn cosine_known_values() {
        let (_, b) = bags(&["a b c d", "c d"]);
        // |inter| = 2, sqrt(4*2) = 2.828…
        assert!((cosine(&b[0], &b[1]) - 2.0 / 8.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn dice_known_values() {
        let (_, b) = bags(&["a b c", "b c d"]);
        assert!((dice(&b[0], &b[1]) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_subset_is_one() {
        let (_, b) = bags(&["new york city", "new york"]);
        assert_eq!(overlap_coefficient(&b[0], &b[1]), 1.0);
    }

    #[test]
    fn monge_elkan_rewards_near_matches() {
        let (it, b) = bags(&["jonathan smith", "jonathon smyth", "completely different"]);
        let sim = monge_elkan(&it, &b[0], &b[1]);
        assert!(
            sim > 0.8,
            "near-identical tokens should score high, got {sim}"
        );
        assert!(monge_elkan(&it, &b[0], &b[2]) < sim);
    }

    #[test]
    fn monge_elkan_identity() {
        let (it, b) = bags(&["alpha beta"]);
        assert!((monge_elkan(&it, &b[0], &b[0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn monge_elkan_is_representation_independent() {
        // Same texts interned in different orders (different symbol
        // numbering) must give bit-identical results.
        let mut it1 = Interner::new();
        let a1 = words(&mut it1, "zeta alpha mid");
        let b1 = words(&mut it1, "zetta alpa mid");
        let mut it2 = Interner::new();
        let warm = words(&mut it2, "mid alpa zetta unrelated");
        let a2 = words(&mut it2, "zeta alpha mid");
        let b2 = words(&mut it2, "zetta alpa mid");
        drop(warm);
        assert_eq!(
            monge_elkan(&it1, &a1, &b1).to_bits(),
            monge_elkan(&it2, &a2, &b2).to_bits()
        );
    }
}
