//! Token-based and hybrid similarity measures.

use crate::edit::jaro_winkler;
use crate::tokenize::TokenBag;

/// Jaccard similarity `|A ∩ B| / |A ∪ B|` over distinct tokens, in
/// `[0, 1]`. Two empty bags are maximally similar.
pub fn jaccard(a: &TokenBag, b: &TokenBag) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.set_intersection(b);
    let union = a.set_union(b);
    if union == 0 {
        return 0.0;
    }
    inter as f64 / union as f64
}

/// Set-based cosine similarity `|A ∩ B| / √(|A|·|B|)` over distinct
/// tokens (Magellan's `cos` for q-gram features), in `[0, 1]`.
pub fn cosine(a: &TokenBag, b: &TokenBag) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    a.set_intersection(b) as f64 / ((a.distinct() as f64) * (b.distinct() as f64)).sqrt()
}

/// Dice coefficient `2|A ∩ B| / (|A| + |B|)` over distinct tokens, in
/// `[0, 1]`.
pub fn dice(a: &TokenBag, b: &TokenBag) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let denom = a.distinct() + b.distinct();
    if denom == 0 {
        return 0.0;
    }
    2.0 * a.set_intersection(b) as f64 / denom as f64
}

/// Overlap coefficient `|A ∩ B| / min(|A|, |B|)` over distinct tokens, in
/// `[0, 1]`. Useful when one value is an abbreviation / subset of the
/// other.
pub fn overlap_coefficient(a: &TokenBag, b: &TokenBag) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let min = a.distinct().min(b.distinct());
    if min == 0 {
        return 0.0;
    }
    a.set_intersection(b) as f64 / min as f64
}

/// Monge-Elkan similarity: for each token of `a`, the best Jaro-Winkler
/// match among tokens of `b`, averaged. Range `[0, 1]`. Asymmetric by
/// definition; Magellan uses it as-is (first argument = left tuple).
pub fn monge_elkan(a: &TokenBag, b: &TokenBag) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    let mut n = 0usize;
    for ta in a.tokens() {
        let best = b
            .tokens()
            .map(|tb| jaro_winkler(ta, tb))
            .fold(0.0f64, f64::max);
        total += best;
        n += 1;
    }
    total / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::words;

    #[test]
    fn jaccard_known_values() {
        let a = words("a b c");
        let b = words("b c d");
        assert!((jaccard(&a, &b) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard(&a, &a), 1.0);
    }

    #[test]
    fn jaccard_disjoint_is_zero() {
        assert_eq!(jaccard(&words("a b"), &words("x y")), 0.0);
    }

    #[test]
    fn empty_bag_conventions() {
        let e = words("");
        let x = words("a");
        assert_eq!(jaccard(&e, &e), 1.0);
        assert_eq!(jaccard(&e, &x), 0.0);
        assert_eq!(cosine(&e, &e), 1.0);
        assert_eq!(cosine(&e, &x), 0.0);
        assert_eq!(dice(&e, &e), 1.0);
        assert_eq!(overlap_coefficient(&e, &e), 1.0);
        assert_eq!(monge_elkan(&e, &e), 1.0);
        assert_eq!(monge_elkan(&e, &x), 0.0);
    }

    #[test]
    fn cosine_known_values() {
        let a = words("a b c d");
        let b = words("c d");
        // |inter| = 2, sqrt(4*2) = 2.828…
        assert!((cosine(&a, &b) - 2.0 / 8.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn dice_known_values() {
        let a = words("a b c");
        let b = words("b c d");
        assert!((dice(&a, &b) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_subset_is_one() {
        let full = words("new york city");
        let abbrev = words("new york");
        assert_eq!(overlap_coefficient(&full, &abbrev), 1.0);
    }

    #[test]
    fn monge_elkan_rewards_near_matches() {
        let a = words("jonathan smith");
        let b = words("jonathon smyth");
        let sim = monge_elkan(&a, &b);
        assert!(
            sim > 0.8,
            "near-identical tokens should score high, got {sim}"
        );
        let c = words("completely different");
        assert!(monge_elkan(&a, &c) < sim);
    }

    #[test]
    fn monge_elkan_identity() {
        let a = words("alpha beta");
        assert!((monge_elkan(&a, &a) - 1.0).abs() < 1e-12);
    }
}
