//! Tokenizers: q-grams and word tokens, over interned symbols.
//!
//! Magellan names its features after the tokenizer used, e.g.
//! `title_title_jac_qgm_3_qgm_3` = Jaccard over 3-grams of the two title
//! values. We reproduce the same two tokenizer families, but tokens are
//! interned ([`crate::intern::Interner`]) so a bag stores sorted
//! `(Sym, count)` pairs instead of one heap string per distinct token.

use crate::intern::{InternSink, Interner, Sym};

/// A multiset of tokens with counts, the input to the token-based
/// similarity measures.
///
/// Token identity is the interned symbol; counts matter for Monge-Elkan
/// and TF-IDF but not for Jaccard/overlap (which operate on the support
/// set). Entries are stored sorted by symbol, so iteration is
/// deterministic and set operations are merge-joins over two sorted
/// slices — no hashing, no string comparisons.
///
/// Bags are only comparable when built against the same interner.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TokenBag {
    entries: Box<[(Sym, u32)]>,
    total: u32,
}

impl TokenBag {
    /// Builds a bag from a symbol stream (with multiplicity).
    pub fn from_syms(syms: Vec<Sym>) -> Self {
        let mut buf = syms;
        Self::from_sym_buf(&mut buf)
    }

    /// Builds a bag from a reusable symbol buffer (sorted and
    /// run-length-encoded in place; the buffer is left cleared).
    pub fn from_sym_buf(buf: &mut Vec<Sym>) -> Self {
        buf.sort_unstable();
        let total = buf.len() as u32;
        let mut entries: Vec<(Sym, u32)> = Vec::new();
        for &s in buf.iter() {
            match entries.last_mut() {
                Some((last, c)) if *last == s => *c += 1,
                _ => entries.push((s, 1)),
            }
        }
        buf.clear();
        Self {
            entries: entries.into_boxed_slice(),
            total,
        }
    }

    /// Number of distinct tokens.
    pub fn distinct(&self) -> usize {
        self.entries.len()
    }

    /// Total token count (with multiplicity).
    pub fn len(&self) -> usize {
        self.total as usize
    }

    /// Whether the bag is empty.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Count of a specific symbol.
    pub fn count(&self, sym: Sym) -> u32 {
        self.entries
            .binary_search_by_key(&sym, |&(s, _)| s)
            .map(|i| self.entries[i].1)
            .unwrap_or(0)
    }

    /// Count of a token given as text (resolved through the interner the
    /// bag was built with).
    pub fn count_text(&self, interner: &Interner, token: &str) -> u32 {
        interner.get(token).map_or(0, |s| self.count(s))
    }

    /// Iterator over `(symbol, count)` pairs, sorted by symbol.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, u32)> + '_ {
        self.entries.iter().copied()
    }

    /// The distinct symbols, sorted.
    pub fn syms(&self) -> impl Iterator<Item = Sym> + '_ {
        self.entries.iter().map(|&(s, _)| s)
    }

    /// The distinct tokens as text (in symbol order).
    pub fn tokens<'a>(&'a self, interner: &'a Interner) -> impl Iterator<Item = &'a str> + 'a {
        self.syms().map(|s| interner.resolve(s))
    }

    /// Size of the set intersection (distinct tokens present in both):
    /// a merge-join over the two sorted entry slices.
    pub fn set_intersection(&self, other: &TokenBag) -> usize {
        let (a, b) = (&self.entries, &other.entries);
        let (mut i, mut j, mut n) = (0, 0, 0);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    /// Size of the set union (distinct tokens present in either).
    pub fn set_union(&self, other: &TokenBag) -> usize {
        self.distinct() + other.distinct() - self.set_intersection(other)
    }

    /// Internal raw entries (for rebinding scratch-local symbols).
    pub(crate) fn entries(&self) -> &[(Sym, u32)] {
        &self.entries
    }

    /// Rebuilds a bag from already-counted entries (re-sorted by symbol).
    pub(crate) fn from_entries(mut entries: Vec<(Sym, u32)>, total: u32) -> Self {
        entries.sort_unstable_by_key(|&(s, _)| s);
        Self {
            entries: entries.into_boxed_slice(),
            total,
        }
    }
}

/// Lowercases and strips non-alphanumeric characters (keeping spaces),
/// collapsing runs of whitespace — the canonical pre-tokenization
/// cleanup. Buffer-reusing form: writes into `out`.
pub fn normalize_into(s: &str, out: &mut String) {
    out.clear();
    let mut last_space = true;
    for ch in s.chars() {
        if ch.is_alphanumeric() {
            out.extend(ch.to_lowercase());
            last_space = false;
        } else if !last_space {
            out.push(' ');
            last_space = true;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
}

/// Allocating convenience form of [`normalize_into`].
pub fn normalize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    normalize_into(s, &mut out);
    out
}

/// Tokenizes an *already-normalized* string into word symbols, appending
/// to `out` (in occurrence order, with multiplicity).
pub(crate) fn words_from_norm<S: InternSink>(sink: &mut S, norm: &str, out: &mut Vec<Sym>) {
    for tok in norm.split(' ') {
        if !tok.is_empty() {
            out.push(sink.intern_token(tok));
        }
    }
}

/// Character q-grams of an *already-normalized* string, padded with
/// `q − 1` leading and trailing `#` marks, appended to `out` as symbols
/// in window order. Builds windows directly over a reusable char buffer
/// (no `format!`, no per-call `Vec<char>`, no per-token `String`).
pub(crate) fn qgrams_from_norm<S: InternSink>(
    sink: &mut S,
    norm: &str,
    q: usize,
    chars: &mut Vec<char>,
    tok: &mut String,
    out: &mut Vec<Sym>,
) {
    assert!(q > 0, "q-gram size must be positive");
    if norm.is_empty() {
        return;
    }
    chars.clear();
    chars.extend(std::iter::repeat_n('#', q - 1));
    chars.extend(norm.chars());
    chars.extend(std::iter::repeat_n('#', q - 1));
    if chars.len() < q {
        tok.clear();
        tok.extend(chars.iter());
        out.push(sink.intern_token(tok));
        return;
    }
    for w in chars.windows(q) {
        tok.clear();
        tok.extend(w.iter());
        out.push(sink.intern_token(tok));
    }
}

/// Splits into lowercase word tokens (alphanumeric runs), interning each
/// token.
pub fn words(interner: &mut Interner, s: &str) -> TokenBag {
    let norm = normalize(s);
    let mut syms = Vec::new();
    words_from_norm(interner, &norm, &mut syms);
    TokenBag::from_sym_buf(&mut syms)
}

/// Character q-grams of the *normalized* string, padded with `q − 1`
/// leading and trailing `#` marks (Magellan's convention, which lets
/// short strings still produce tokens and weights prefixes/suffixes).
///
/// # Panics
/// Panics if `q == 0`.
pub fn qgrams(interner: &mut Interner, s: &str, q: usize) -> TokenBag {
    assert!(q > 0, "q-gram size must be positive");
    let norm = normalize(s);
    let (mut chars, mut tok, mut syms) = (Vec::new(), String::new(), Vec::new());
    qgrams_from_norm(interner, &norm, q, &mut chars, &mut tok, &mut syms);
    TokenBag::from_sym_buf(&mut syms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_lowercases_and_strips_punctuation() {
        assert_eq!(normalize("Hello,  World!"), "hello world");
        assert_eq!(normalize("  A-B_C  "), "a b c");
        assert_eq!(normalize(""), "");
        assert_eq!(normalize("!!!"), "");
    }

    #[test]
    fn words_splits_on_nonalphanumeric() {
        let mut it = Interner::new();
        let bag = words(&mut it, "The Quick, quick fox");
        assert_eq!(bag.count_text(&it, "quick"), 2);
        assert_eq!(bag.count_text(&it, "the"), 1);
        assert_eq!(bag.distinct(), 3);
        assert_eq!(bag.len(), 4);
    }

    #[test]
    fn qgrams_of_abc_with_q2() {
        // normalized "abc" padded to "#abc#": #a ab bc c#
        let mut it = Interner::new();
        let bag = qgrams(&mut it, "ABC", 2);
        assert_eq!(bag.count_text(&it, "#a"), 1);
        assert_eq!(bag.count_text(&it, "ab"), 1);
        assert_eq!(bag.count_text(&it, "bc"), 1);
        assert_eq!(bag.count_text(&it, "c#"), 1);
        assert_eq!(bag.len(), 4);
    }

    #[test]
    fn qgrams_empty_string_yields_empty_bag() {
        let mut it = Interner::new();
        assert!(qgrams(&mut it, "", 3).is_empty());
        assert!(qgrams(&mut it, "—!", 3).is_empty());
    }

    #[test]
    fn qgrams_shorter_than_q_still_tokenize() {
        let mut it = Interner::new();
        let bag = qgrams(&mut it, "a", 3);
        assert!(
            !bag.is_empty(),
            "padding must produce tokens for short strings"
        );
    }

    #[test]
    fn set_ops_known_values() {
        let mut it = Interner::new();
        let a = words(&mut it, "red green blue");
        let b = words(&mut it, "green blue yellow");
        assert_eq!(a.set_intersection(&b), 2);
        assert_eq!(a.set_union(&b), 4);
    }

    #[test]
    fn intersection_is_symmetric() {
        let mut it = Interner::new();
        let a = words(&mut it, "x y z w");
        let b = words(&mut it, "y w");
        assert_eq!(a.set_intersection(&b), b.set_intersection(&a));
    }

    #[test]
    fn bag_iteration_is_sorted_by_symbol() {
        let mut it = Interner::new();
        let bag = words(&mut it, "zeta alpha zeta mid");
        let syms: Vec<Sym> = bag.syms().collect();
        let mut sorted = syms.clone();
        sorted.sort();
        assert_eq!(syms, sorted);
        assert_eq!(bag.count_text(&it, "zeta"), 2);
    }

    #[test]
    #[should_panic(expected = "q-gram size")]
    fn zero_q_panics() {
        qgrams(&mut Interner::new(), "abc", 0);
    }
}
