//! Tokenizers: q-grams and word tokens.
//!
//! Magellan names its features after the tokenizer used, e.g.
//! `title_title_jac_qgm_3_qgm_3` = Jaccard over 3-grams of the two title
//! values. We reproduce the same two tokenizer families.

use std::collections::HashMap;

/// A multiset of tokens with counts, the input to the token-based
/// similarity measures.
///
/// Token identity is the string itself; counts matter for the cosine
/// measure and Monge-Elkan but not for Jaccard/overlap (which operate on
/// the support set).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TokenBag {
    counts: HashMap<String, u32>,
    total: u32,
}

impl TokenBag {
    /// Builds a bag from an iterator of tokens.
    pub fn from_tokens<I: IntoIterator<Item = String>>(tokens: I) -> Self {
        let mut bag = Self::default();
        for t in tokens {
            *bag.counts.entry(t).or_insert(0) += 1;
            bag.total += 1;
        }
        bag
    }

    /// Number of distinct tokens.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Total token count (with multiplicity).
    pub fn len(&self) -> usize {
        self.total as usize
    }

    /// Whether the bag is empty.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Count of a specific token.
    pub fn count(&self, token: &str) -> u32 {
        self.counts.get(token).copied().unwrap_or(0)
    }

    /// Iterator over `(token, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u32)> {
        self.counts.iter().map(|(t, &c)| (t.as_str(), c))
    }

    /// Size of the set intersection (distinct tokens present in both).
    pub fn set_intersection(&self, other: &TokenBag) -> usize {
        // Iterate over the smaller bag for speed.
        let (small, large) = if self.distinct() <= other.distinct() {
            (self, other)
        } else {
            (other, self)
        };
        small
            .counts
            .keys()
            .filter(|t| large.counts.contains_key(*t))
            .count()
    }

    /// Size of the set union (distinct tokens present in either).
    pub fn set_union(&self, other: &TokenBag) -> usize {
        self.distinct() + other.distinct() - self.set_intersection(other)
    }

    /// The distinct tokens.
    pub fn tokens(&self) -> impl Iterator<Item = &str> {
        self.counts.keys().map(String::as_str)
    }
}

/// Lowercases and strips non-alphanumeric characters (keeping spaces),
/// collapsing runs of whitespace — the canonical pre-tokenization cleanup.
pub fn normalize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_space = true;
    for ch in s.chars() {
        if ch.is_alphanumeric() {
            out.extend(ch.to_lowercase());
            last_space = false;
        } else if !last_space {
            out.push(' ');
            last_space = true;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Splits into lowercase word tokens (alphanumeric runs).
pub fn words(s: &str) -> TokenBag {
    TokenBag::from_tokens(
        normalize(s)
            .split(' ')
            .filter(|w| !w.is_empty())
            .map(String::from),
    )
}

/// Character q-grams of the *normalized* string, padded with `q − 1`
/// leading and trailing `#` marks (Magellan's convention, which lets short
/// strings still produce tokens and weights prefixes/suffixes).
///
/// # Panics
/// Panics if `q == 0`.
pub fn qgrams(s: &str, q: usize) -> TokenBag {
    assert!(q > 0, "q-gram size must be positive");
    let norm = normalize(s);
    if norm.is_empty() {
        return TokenBag::default();
    }
    let pad = "#".repeat(q - 1);
    let padded: Vec<char> = format!("{pad}{norm}{pad}").chars().collect();
    if padded.len() < q {
        return TokenBag::from_tokens(std::iter::once(padded.iter().collect()));
    }
    TokenBag::from_tokens(padded.windows(q).map(|w| w.iter().collect::<String>()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_lowercases_and_strips_punctuation() {
        assert_eq!(normalize("Hello,  World!"), "hello world");
        assert_eq!(normalize("  A-B_C  "), "a b c");
        assert_eq!(normalize(""), "");
        assert_eq!(normalize("!!!"), "");
    }

    #[test]
    fn words_splits_on_nonalphanumeric() {
        let bag = words("The Quick, quick fox");
        assert_eq!(bag.count("quick"), 2);
        assert_eq!(bag.count("the"), 1);
        assert_eq!(bag.distinct(), 3);
        assert_eq!(bag.len(), 4);
    }

    #[test]
    fn qgrams_of_abc_with_q2() {
        // normalized "abc" padded to "#abc#": #a ab bc c#
        let bag = qgrams("ABC", 2);
        assert_eq!(bag.count("#a"), 1);
        assert_eq!(bag.count("ab"), 1);
        assert_eq!(bag.count("bc"), 1);
        assert_eq!(bag.count("c#"), 1);
        assert_eq!(bag.len(), 4);
    }

    #[test]
    fn qgrams_empty_string_yields_empty_bag() {
        assert!(qgrams("", 3).is_empty());
        assert!(qgrams("—!", 3).is_empty());
    }

    #[test]
    fn qgrams_shorter_than_q_still_tokenize() {
        let bag = qgrams("a", 3);
        assert!(
            !bag.is_empty(),
            "padding must produce tokens for short strings"
        );
    }

    #[test]
    fn set_ops_known_values() {
        let a = words("red green blue");
        let b = words("green blue yellow");
        assert_eq!(a.set_intersection(&b), 2);
        assert_eq!(a.set_union(&b), 4);
    }

    #[test]
    fn intersection_is_symmetric() {
        let a = words("x y z w");
        let b = words("y w");
        assert_eq!(a.set_intersection(&b), b.set_intersection(&a));
    }

    #[test]
    #[should_panic(expected = "q-gram size")]
    fn zero_q_panics() {
        qgrams("abc", 0);
    }
}
