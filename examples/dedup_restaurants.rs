//! Deduplication (`T = T'`): find duplicate restaurants inside one table
//! and cluster them by transitive closure.
//!
//! Builds a single dirty table from the Fodors-Zagat synthetic profile
//! (both feeds concatenated, so each matched entity appears at least
//! twice), runs [`zeroer::dedup_table`] and evaluates against the known
//! ground truth.
//!
//! ```sh
//! cargo run --release --example dedup_restaurants
//! ```

use zeroer::datagen::{generate, profiles::rest_fz};
use zeroer::eval::metrics::ConfusionMatrix;
use zeroer::pipeline::{dedup_table, MatchOptions};
use zeroer::tabular::{Record, Table};

fn main() {
    // One dirty table = left feed + right feed of the Rest-FZ stand-in.
    let ds = generate(&rest_fz(), 0.4, 7);
    let mut table = Table::new("restaurants", ds.left.schema().clone());
    for r in ds.left.records() {
        table.push(r.clone());
    }
    let offset = ds.left.len();
    for (i, r) in ds.right.records().iter().enumerate() {
        table.push(Record::new((offset + i) as u32, r.values.clone()));
    }
    // Ground-truth duplicate pairs in the concatenated index space.
    let truth: Vec<(usize, usize)> = ds.matches.iter().map(|&(l, r)| (l, offset + r)).collect();

    let result = dedup_table(&table, &MatchOptions::default());

    // Score predictions against truth on the candidate pairs.
    let truth_set: std::collections::HashSet<(usize, usize)> = truth.into_iter().collect();
    let labels: Vec<bool> = result.pairs.iter().map(|p| truth_set.contains(p)).collect();
    let cm = ConfusionMatrix::from_predictions(&result.labels, &labels);

    println!("records                 : {}", table.len());
    println!("candidate pairs         : {}", result.pairs.len());
    println!("true duplicate pairs    : {}", truth_set.len());
    println!(
        "predicted duplicates    : {}",
        result.labels.iter().filter(|&&l| l).count()
    );
    println!(
        "precision / recall / F1 : {:.3} / {:.3} / {:.3}",
        cm.precision(),
        cm.recall(),
        cm.f1()
    );
    println!("duplicate clusters      : {}\n", result.clusters.len());

    for cluster in result.clusters.iter().take(5) {
        println!("cluster:");
        for &i in cluster {
            println!("    {}", table.value(i, 0));
        }
    }
}
