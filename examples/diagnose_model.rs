//! Model diagnostics: inspect what a fitted ZeroER model learned and how
//! well its posteriors are calibrated.
//!
//! Fits ZeroER on the movie stand-in, prints the per-feature report
//! (which similarity features drive the match decision), the blocking
//! quality report, and the precision-recall trade-off of the posterior
//! scores including the best-F1 threshold.
//!
//! ```sh
//! cargo run --release --example diagnose_model
//! ```

use zeroer::blocking::{
    Blocker, BlockingReport, PairMode, QgramBlocker, TokenBlocker, UnionBlocker,
};
use zeroer::core::{GenerativeModel, ModelReport, TransitivityCalibrator, ZeroErConfig};
use zeroer::datagen::{generate, profiles::mv_ri};
use zeroer::eval::curves::{auc_pr, best_f1_threshold, brier_score};
use zeroer::eval::metrics::f_score;
use zeroer::features::PairFeaturizer;

fn main() {
    let ds = generate(&mv_ri(), 0.3, 21);

    let blocker = UnionBlocker::new(vec![
        Box::new(TokenBlocker::new(0)),
        Box::new(QgramBlocker::new(0, 4)),
    ]);
    let cs = blocker.candidates(&ds.left, &ds.right, PairMode::Cross);
    let report = BlockingReport::evaluate(&cs, &ds.matches, ds.left.len(), ds.right.len());
    println!("blocking: {report}");
    println!("blocking figure of merit: {:.3}\n", report.f_measure());

    let fz = PairFeaturizer::new(&ds.left, &ds.right);
    let mut fs = fz.featurize(cs.pairs());
    fs.normalize();
    let labels = ds.labels_for(cs.pairs());

    let mut model = GenerativeModel::new(ZeroErConfig::default(), fs.layout.clone());
    let cal = TransitivityCalibrator::new(cs.pairs());
    let summary = model.fit(&fs.matrix, Some(&cal));
    println!(
        "EM: {} iterations, converged = {}\n",
        summary.iterations, summary.converged
    );

    // What did the model learn? Per-feature fitted statistics, most
    // discriminative first.
    let report = ModelReport::from_model(&model, Some(&fs.names));
    println!("{}", report.to_text());

    // How good are the posteriors as scores?
    let gammas = model.gammas();
    println!(
        "F1 @ 0.5 threshold : {:.3}",
        f_score(&model.labels(), &labels)
    );
    println!("AUC-PR             : {:.3}", auc_pr(gammas, &labels));
    println!("Brier score        : {:.3}", brier_score(gammas, &labels));
    if let Some(best) = best_f1_threshold(gammas, &labels) {
        println!(
            "best F1 threshold  : {:.3} (P = {:.3}, R = {:.3}, F1 = {:.3})",
            best.threshold, best.precision, best.recall, best.f1
        );
    }
}
