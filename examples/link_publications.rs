//! Record linkage (`T ≠ T'`) on the DBLP-ACM stand-in, exercising the
//! three-model transitivity trainer of §5 and comparing against the
//! unsupervised baselines of Table 2 — then serving the same workload
//! **online**: the fit is frozen into a linkage snapshot and the last
//! 30 % of the right catalog is streamed through the frozen cross model
//! (`LinkPipeline`, zero EM iterations at ingest time).
//!
//! ```sh
//! cargo run --release --example link_publications
//! ```

use std::collections::HashSet;
use zeroer::baselines::common::Classifier;
use zeroer::baselines::{GaussianMixture, KMeans};
use zeroer::blocking::{Blocker, PairMode, TokenBlocker};
use zeroer::core::{LinkageModel, LinkageTask, ZeroErConfig};
use zeroer::datagen::{generate, profiles::pub_da};
use zeroer::eval::metrics::f_score;
use zeroer::features::PairFeaturizer;
use zeroer::stream::{LinkPipeline, Side, StreamOptions};
use zeroer::tabular::Table;

fn main() {
    let ds = generate(&pub_da(), 0.08, 11);
    println!("left (DBLP-like)  : {} records", ds.left.len());
    println!("right (ACM-like)  : {} records", ds.right.len());
    println!("true matches      : {}\n", ds.matches.len());

    // Overlap blocking on the title (2 shared tokens required).
    let blocker = TokenBlocker::with_overlap(0, 2);
    let cross_cs = blocker.candidates(&ds.left, &ds.right, PairMode::Cross);
    let left_cs = blocker.candidates(&ds.left, &ds.left, PairMode::Dedup);
    let right_cs = blocker.candidates(&ds.right, &ds.right, PairMode::Dedup);
    println!("candidates (cross): {}", cross_cs.len());
    println!(
        "blocking recall   : {:.3}\n",
        cross_cs.recall_against(&ds.matches)
    );

    // Feature generation per leg.
    let make_task = |l, r, cs: &zeroer::blocking::CandidateSet| {
        let fz = PairFeaturizer::new(l, r);
        let mut fs = fz.featurize(cs.pairs());
        fs.normalize();
        LinkageTask::new(fs.matrix, cs.pairs().to_vec(), fs.layout)
    };
    let cross = make_task(&ds.left, &ds.right, &cross_cs);
    let left = make_task(&ds.left, &ds.left, &left_cs);
    let right = make_task(&ds.right, &ds.right, &right_cs);
    let labels = ds.labels_for(cross_cs.pairs());

    // ZeroER: the three-model joint trainer (F, Fl, Fr).
    let out = LinkageModel::new(ZeroErConfig::default()).fit(&cross, &left, &right);
    println!(
        "ZeroER       F1 = {:.3}  ({} EM iterations, converged: {})",
        f_score(&out.cross_labels, &labels),
        out.summary.iterations,
        out.summary.converged
    );

    // Unsupervised baselines on the same features.
    let mut km = KMeans::class_weighted(1);
    km.fit(&cross.features, &[]);
    println!(
        "KMeans (RL)  F1 = {:.3}",
        f_score(&km.predict(&cross.features), &labels)
    );

    let mut gmm = GaussianMixture::default();
    gmm.fit(&cross.features, &[]);
    println!(
        "GMM          F1 = {:.3}",
        f_score(&gmm.predict(&cross.features), &labels)
    );

    // Show a few matched titles.
    println!("\nsample predicted matches:");
    for ((l, r), _) in cross
        .pairs
        .iter()
        .zip(&out.cross_labels)
        .filter(|(_, &m)| m)
        .take(5)
    {
        println!("  {}  <->  {}", ds.left.value(*l, 0), ds.right.value(*r, 0));
    }

    // ---- Streaming linkage: freeze, then serve ---------------------
    // Bootstrap the three-model fit on the left catalog plus 70 % of the
    // right one, freeze it into a LinkSnapshot, and stream the remaining
    // right-side records: each probes the *left* index for candidates
    // and is scored with the frozen cross model — no EM at ingest time.
    let opts = StreamOptions {
        min_token_overlap: 2,
        ..StreamOptions::default()
    };
    let cut = ds.right.len() * 7 / 10;
    let mut boot_right = Table::new("right-boot", ds.right.schema().clone());
    for r in ds.right.records().iter().take(cut) {
        boot_right.push(r.clone());
    }
    let (mut pipeline, report) =
        LinkPipeline::bootstrap(&ds.left, &boot_right, opts).expect("linkage bootstrap");
    let snapshot_bytes = pipeline.snapshot().to_json().len();
    let outcomes = pipeline.ingest_batch_parallel(
        ds.right.records()[cut..].to_vec(),
        Side::Right,
        zeroer::stream::pipeline::available_threads(),
    );
    let linked = outcomes.iter().filter(|o| !o.is_new_entity()).count();

    let nl = ds.left.len();
    let truth: HashSet<(usize, usize)> = ds.matches.iter().map(|&(l, r)| (l, nl + r)).collect();
    let links = pipeline.cross_links();
    let pred: HashSet<(usize, usize)> = links.iter().copied().collect();
    let tp = pred.intersection(&truth).count() as f64;
    let stream_f1 = if pred.is_empty() || truth.is_empty() {
        0.0
    } else {
        let p = tp / pred.len() as f64;
        let r = tp / truth.len() as f64;
        2.0 * p * r / (p + r).max(f64::MIN_POSITIVE)
    };
    println!("\n== streaming linkage (70 % bootstrap, 30 % streamed) ==");
    println!(
        "bootstrap         : {} cross candidates, {} EM iterations, snapshot {} bytes",
        report.pairs.len(),
        report.em_iterations,
        snapshot_bytes
    );
    println!(
        "streamed          : {} right-side records, {} linked across tables, {} new entities",
        outcomes.len(),
        linked,
        outcomes.len() - linked
    );
    println!("streaming  F1 = {stream_f1:.3}  (cross links vs ground truth, zero ingest-time EM)");
}
