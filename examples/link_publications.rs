//! Record linkage (`T ≠ T'`) on the DBLP-ACM stand-in, exercising the
//! three-model transitivity trainer of §5 and comparing against the
//! unsupervised baselines of Table 2.
//!
//! ```sh
//! cargo run --release --example link_publications
//! ```

use zeroer::baselines::common::Classifier;
use zeroer::baselines::{GaussianMixture, KMeans};
use zeroer::blocking::{Blocker, PairMode, TokenBlocker};
use zeroer::core::{LinkageModel, LinkageTask, ZeroErConfig};
use zeroer::datagen::{generate, profiles::pub_da};
use zeroer::eval::metrics::f_score;
use zeroer::features::PairFeaturizer;

fn main() {
    let ds = generate(&pub_da(), 0.08, 11);
    println!("left (DBLP-like)  : {} records", ds.left.len());
    println!("right (ACM-like)  : {} records", ds.right.len());
    println!("true matches      : {}\n", ds.matches.len());

    // Overlap blocking on the title (2 shared tokens required).
    let blocker = TokenBlocker::with_overlap(0, 2);
    let cross_cs = blocker.candidates(&ds.left, &ds.right, PairMode::Cross);
    let left_cs = blocker.candidates(&ds.left, &ds.left, PairMode::Dedup);
    let right_cs = blocker.candidates(&ds.right, &ds.right, PairMode::Dedup);
    println!("candidates (cross): {}", cross_cs.len());
    println!(
        "blocking recall   : {:.3}\n",
        cross_cs.recall_against(&ds.matches)
    );

    // Feature generation per leg.
    let make_task = |l, r, cs: &zeroer::blocking::CandidateSet| {
        let fz = PairFeaturizer::new(l, r);
        let mut fs = fz.featurize(cs.pairs());
        fs.normalize();
        LinkageTask::new(fs.matrix, cs.pairs().to_vec(), fs.layout)
    };
    let cross = make_task(&ds.left, &ds.right, &cross_cs);
    let left = make_task(&ds.left, &ds.left, &left_cs);
    let right = make_task(&ds.right, &ds.right, &right_cs);
    let labels = ds.labels_for(cross_cs.pairs());

    // ZeroER: the three-model joint trainer (F, Fl, Fr).
    let out = LinkageModel::new(ZeroErConfig::default()).fit(&cross, &left, &right);
    println!(
        "ZeroER       F1 = {:.3}  ({} EM iterations, converged: {})",
        f_score(&out.cross_labels, &labels),
        out.summary.iterations,
        out.summary.converged
    );

    // Unsupervised baselines on the same features.
    let mut km = KMeans::class_weighted(1);
    km.fit(&cross.features, &[]);
    println!(
        "KMeans (RL)  F1 = {:.3}",
        f_score(&km.predict(&cross.features), &labels)
    );

    let mut gmm = GaussianMixture::default();
    gmm.fit(&cross.features, &[]);
    println!(
        "GMM          F1 = {:.3}",
        f_score(&gmm.predict(&cross.features), &labels)
    );

    // Show a few matched titles.
    println!("\nsample predicted matches:");
    for ((l, r), _) in cross
        .pairs
        .iter()
        .zip(&out.cross_labels)
        .filter(|(_, &m)| m)
        .take(5)
    {
        println!("  {}  <->  {}", ds.left.value(*l, 0), ds.right.value(*r, 0));
    }
}
