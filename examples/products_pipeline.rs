//! The hard domain: Amazon-Google style product matching, where matched
//! listings share little surface vocabulary (§7.2's motivating failure
//! case for similarity-based matchers).
//!
//! Demonstrates the ablation switches programmatically: plain GMM-style
//! settings vs feature grouping vs the full ZeroER stack, plus a
//! supervised random forest upper bound.
//!
//! ```sh
//! cargo run --release --example products_pipeline
//! ```

use zeroer::baselines::common::{take_labels, take_rows, Classifier};
use zeroer::baselines::RandomForest;
use zeroer::blocking::{Blocker, PairMode, QgramBlocker, TokenBlocker, UnionBlocker};
use zeroer::core::{FeatureDependence, GenerativeModel, Regularization, ZeroErConfig};
use zeroer::datagen::{generate, profiles::prod_ag};
use zeroer::eval::metrics::f_score;
use zeroer::eval::split::{oversample_minority, train_test_split};
use zeroer::features::PairFeaturizer;

fn main() {
    let ds = generate(&prod_ag(), 0.08, 3);
    println!("Amazon-like products : {}", ds.left.len());
    println!("Google-like products : {}", ds.right.len());

    let blocker = UnionBlocker::new(vec![
        Box::new(TokenBlocker::new(0)),
        Box::new(QgramBlocker::new(0, 4)),
    ]);
    let cs = blocker.candidates(&ds.left, &ds.right, PairMode::Cross);
    let labels = ds.labels_for(cs.pairs());
    let n_matches = labels.iter().filter(|&&l| l).count();
    println!(
        "candidates           : {} ({} true matches)\n",
        cs.len(),
        n_matches
    );

    let fz = PairFeaturizer::new(&ds.left, &ds.right);
    let mut fs = fz.featurize(cs.pairs());
    fs.normalize();
    println!(
        "features             : {} in {} attribute groups",
        fs.dim(),
        fs.layout.num_groups()
    );
    println!(
        "feature names        : {:?}\n",
        &fs.names[..fs.names.len().min(6)]
    );

    // Ablation ladder: each step adds one of the paper's innovations.
    let ladder = [
        (
            "naive GMM-ish (full cov, Tikhonov)",
            ZeroErConfig::ablation(FeatureDependence::Full, Regularization::Tikhonov),
        ),
        (
            "grouped + Tikhonov",
            ZeroErConfig::ablation(FeatureDependence::Grouped, Regularization::Tikhonov),
        ),
        (
            "grouped + adaptive reg",
            ZeroErConfig::ablation(FeatureDependence::Grouped, Regularization::Adaptive),
        ),
        ("+ shared Pearson correlation (G+A+P)", ZeroErConfig::gap()),
    ];
    for (name, cfg) in ladder {
        let mut m = GenerativeModel::new(cfg, fs.layout.clone());
        m.fit(&fs.matrix, None);
        println!("{name:<42} F1 = {:.3}", f_score(&m.labels(), &labels));
    }

    // Supervised comparison: RF trained on half the labeled pairs — the
    // paper's Table 2 shows products are where supervision still helps.
    let (train, test) = train_test_split(fs.matrix.rows(), 0.5, 9);
    let balanced = oversample_minority(&labels, &train, 9);
    let mut rf = RandomForest::new(2, 9);
    rf.fit(
        &take_rows(&fs.matrix, &balanced),
        &take_labels(&labels, &balanced),
    );
    let preds = rf.predict(&take_rows(&fs.matrix, &test));
    println!(
        "{:<42} F1 = {:.3}  (uses {} labels)",
        "supervised random forest (50% labeled)",
        f_score(&preds, &take_labels(&labels, &test)),
        train.len()
    );
}
