//! Quickstart: match two tiny CSV tables with zero labeled examples.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use zeroer::pipeline::{match_tables, MatchOptions};
use zeroer::tabular::csv::read_table;

fn main() {
    // Two publication feeds describing an overlapping set of papers.
    let left = read_table(
        "scholar",
        "title,authors,venue,year\n\
         efficient query processing in distributed systems,J. Smith and L. Chen,vldb,2014\n\
         adaptive indexing for streaming data,M. Garcia,sigmod conference,2016\n\
         probabilistic graph mining at scale,K. Tanaka and R. Lee,kdd,2012\n\
         neural entity matching with transformers,A. Kumar,sigmod conference,2020\n",
    )
    .expect("valid CSV");
    let right = read_table(
        "dblp",
        "title,authors,venue,year\n\
         efficient query procesing in distributed systems,J Smith; L Chen,pvldb,2014\n\
         adaptive indexing for streaming dataa,M. Garcia,sigmod,2016\n\
         completely unrelated survey on operating systems,B. Jones,sosp,2015\n\
         probabilistic graph mining at scale,K. Tanaka; R. Lee,kdd,2012\n",
    )
    .expect("valid CSV");

    // One call: blocking -> automatic feature generation -> the ZeroER
    // generative model with transitivity. No labels anywhere.
    let result = match_tables(&left, &right, &MatchOptions::default());

    println!("candidate pairs after blocking : {}", result.pairs.len());
    println!(
        "predicted matches              : {}\n",
        result.num_matches()
    );
    for (l, r, p) in result.matches() {
        let lt = left.value(l, 0);
        let rt = right.value(r, 0);
        println!("  [{p:.3}] {lt}  <->  {rt}");
    }
}
