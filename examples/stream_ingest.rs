//! Streaming entity resolution: bootstrap once, ingest forever.
//!
//! Generates a synthetic Fodors-Zagat-style dedup workload, fits the
//! ZeroER model on the first 70 % (one EM run), freezes it into a JSON
//! snapshot, and streams the remaining 30 % through the incremental
//! path: per-record blocking against everything already resolved and
//! frozen-model scoring — zero EM iterations at ingest time.
//!
//! Run with `cargo run --release --example stream_ingest`.

use zeroer::datagen::generate;
use zeroer::datagen::profiles::rest_fz;
use zeroer::pipeline::{PipelineSnapshot, StreamOptions, StreamPipeline};
use zeroer::tabular::Table;

fn main() {
    // A dedup workload: both sides of the linkage benchmark in one table.
    let ds = generate(&rest_fz(), 0.2, 7);
    let (table, _truth) = ds.dedup_table();
    let cut = table.len() * 7 / 10;
    let mut initial = Table::new("initial", table.schema().clone());
    for r in table.records().iter().take(cut) {
        initial.push(r.clone());
    }

    // One-shot setup: batch fit + freeze.
    let (mut pipeline, report) =
        StreamPipeline::bootstrap(&initial, StreamOptions::default()).expect("bootstrap");
    println!(
        "bootstrap: {} records, {} candidate pairs, {} EM iterations, {} clusters",
        initial.len(),
        report.pairs.len(),
        report.em_iterations,
        pipeline.clusters().len()
    );

    // The snapshot is plain JSON — persist it, ship it, reload it.
    let json = pipeline.snapshot().to_json();
    let reloaded = PipelineSnapshot::from_json(&json).expect("snapshot round-trips");
    println!(
        "snapshot: {} bytes of JSON, {} features",
        json.len(),
        reloaded.model.dim()
    );

    // Online phase: ingest the remaining records one at a time.
    let mut joined = 0usize;
    for r in table.records()[cut..].iter().cloned() {
        let out = pipeline.ingest(r);
        if let Some(&(best, p)) = out.matches.first() {
            joined += 1;
            if joined <= 5 {
                let name = |i: usize| pipeline.store().table().value(i, 0).to_string();
                println!(
                    "  record {:>3} {:<38} → entity of {:<38} (p = {p:.3})",
                    out.index,
                    name(out.index),
                    name(best)
                );
            }
        }
    }
    println!(
        "ingested {} records: {} joined existing entities, {} duplicate clusters total",
        table.len() - cut,
        joined,
        pipeline.clusters().len()
    );
}
