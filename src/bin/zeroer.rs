//! The `zeroer` command-line tool: unsupervised entity resolution over
//! CSV files.
//!
//! ```text
//! zeroer match <left.csv> <right.csv> [--threshold 0.5] [--overlap N]
//!              [--block-on ATTR] [--kappa K] [--no-transitivity] [--out pairs.csv]
//! zeroer dedup <table.csv>          [same flags]
//! ```
//!
//! `match` links records across two CSVs with identical headers; `dedup`
//! finds duplicate rows inside one CSV. Output is CSV on stdout (or
//! `--out`): `left_id,right_id,probability` sorted by descending
//! probability, thresholded at `--threshold`.

use std::process::ExitCode;
use zeroer::core::ZeroErConfig;
use zeroer::pipeline::{dedup_table, match_tables, MatchOptions};
use zeroer::tabular::csv::read_table;
use zeroer::tabular::Table;

struct Args {
    command: String,
    files: Vec<String>,
    threshold: f64,
    overlap: usize,
    block_on: Option<String>,
    kappa: f64,
    transitivity: bool,
    out: Option<String>,
}

fn usage() -> &'static str {
    "zeroer — entity resolution with zero labeled examples (SIGMOD 2020)\n\
     \n\
     USAGE:\n\
       zeroer match <left.csv> <right.csv> [flags]   link records across two tables\n\
       zeroer dedup <table.csv>            [flags]   find duplicates inside one table\n\
     \n\
     FLAGS:\n\
       --threshold <p>     posterior cut-off for reporting a match (default 0.5)\n\
       --overlap <n>       min shared title tokens for a candidate pair (default 1)\n\
       --block-on <attr>   attribute name to block on (default: first column)\n\
       --kappa <k>         regularization strength (default 0.15, the paper's)\n\
       --no-transitivity   disable the transitivity soft constraint\n\
       --out <file>        write matches to a CSV file instead of stdout\n"
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        command: String::new(),
        files: Vec::new(),
        threshold: 0.5,
        overlap: 1,
        block_on: None,
        kappa: 0.15,
        transitivity: true,
        out: None,
    };
    let mut it = argv.iter().peekable();
    let take_value = |it: &mut std::iter::Peekable<std::slice::Iter<String>>,
                          flag: &str|
     -> Result<String, String> {
        it.next().cloned().ok_or_else(|| format!("{flag} requires a value"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => {
                args.threshold = take_value(&mut it, "--threshold")?
                    .parse()
                    .map_err(|_| "--threshold must be a number".to_string())?;
            }
            "--overlap" => {
                args.overlap = take_value(&mut it, "--overlap")?
                    .parse()
                    .map_err(|_| "--overlap must be an integer".to_string())?;
            }
            "--block-on" => args.block_on = Some(take_value(&mut it, "--block-on")?),
            "--kappa" => {
                args.kappa = take_value(&mut it, "--kappa")?
                    .parse()
                    .map_err(|_| "--kappa must be a number".to_string())?;
            }
            "--no-transitivity" => args.transitivity = false,
            "--out" => args.out = Some(take_value(&mut it, "--out")?),
            "-h" | "--help" => return Err(String::new()),
            flag if flag.starts_with("--") => return Err(format!("unknown flag: {flag}")),
            positional => {
                if args.command.is_empty() {
                    args.command = positional.to_string();
                } else {
                    args.files.push(positional.to_string());
                }
            }
        }
    }
    if !(0.0..=1.0).contains(&args.threshold) {
        return Err("--threshold must lie in [0, 1]".into());
    }
    match (args.command.as_str(), args.files.len()) {
        ("match", 2) | ("dedup", 1) => Ok(args),
        ("match", n) => Err(format!("`match` needs exactly two CSV files, got {n}")),
        ("dedup", n) => Err(format!("`dedup` needs exactly one CSV file, got {n}")),
        (other, _) => Err(format!("unknown command: {other:?}")),
    }
}

fn load(path: &str) -> Result<Table, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    read_table(path, &text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn options(args: &Args, schema_probe: &Table) -> Result<MatchOptions, String> {
    let blocking_attr = match &args.block_on {
        None => 0,
        Some(name) => schema_probe
            .schema()
            .index_of(name)
            .ok_or_else(|| format!("no attribute named {name:?} in the input schema"))?,
    };
    Ok(MatchOptions {
        config: ZeroErConfig { kappa: args.kappa, transitivity: args.transitivity, ..Default::default() },
        blocking_attr,
        min_token_overlap: args.overlap,
    })
}

fn emit(rows: &[(usize, usize, f64)], out: &Option<String>) -> Result<(), String> {
    let mut text = String::from("left_id,right_id,probability\n");
    for (l, r, p) in rows {
        text.push_str(&format!("{l},{r},{p:.4}\n"));
    }
    match out {
        Some(path) => std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}")),
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&argv)?;
    let mut rows: Vec<(usize, usize, f64)>;
    match args.command.as_str() {
        "match" => {
            let left = load(&args.files[0])?;
            let right = load(&args.files[1])?;
            let opts = options(&args, &left)?;
            let result = match_tables(&left, &right, &opts);
            rows = result
                .pairs
                .iter()
                .zip(&result.probabilities)
                .filter(|(_, &p)| p >= args.threshold)
                .map(|(&(l, r), &p)| (l, r, p))
                .collect();
            eprintln!(
                "zeroer: {} candidates, {} matches at threshold {}",
                result.pairs.len(),
                rows.len(),
                args.threshold
            );
        }
        "dedup" => {
            let table = load(&args.files[0])?;
            let opts = options(&args, &table)?;
            let result = dedup_table(&table, &opts);
            rows = result
                .pairs
                .iter()
                .zip(&result.probabilities)
                .filter(|(_, &p)| p >= args.threshold)
                .map(|(&(a, b), &p)| (a, b, p))
                .collect();
            eprintln!(
                "zeroer: {} candidates, {} duplicate pairs, {} clusters",
                result.pairs.len(),
                rows.len(),
                result.clusters.len()
            );
        }
        _ => unreachable!("validated in parse_args"),
    }
    rows.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite probabilities"));
    emit(&rows, &args.out)
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) if msg.is_empty() => {
            eprint!("{}", usage());
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("error: {msg}\n\n{}", usage());
            ExitCode::FAILURE
        }
    }
}
