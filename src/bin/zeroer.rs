//! The `zeroer` command-line tool: unsupervised entity resolution over
//! CSV files.
//!
//! ```text
//! zeroer match <left.csv> <right.csv> [--threshold 0.5] [--overlap N]
//!              [--block-on ATTR] [--kappa K] [--no-transitivity] [--out pairs.csv]
//! zeroer link  <left.csv> <right.csv> --save-model link.json [same flags]
//! zeroer dedup <table.csv>          [same flags] [--save-model snap.json]
//! zeroer ingest <stream.csv>        --model snap.json [--base resolved.csv]
//!                                   [--threads N] [--threshold 0.5] [--out assign.csv]
//! zeroer ingest <stream.csv>        --model link.json --side left|right
//!                                   --base-left left.csv --base-right right.csv [same flags]
//! zeroer retract --ids <file>       --model snap.json --base resolved.csv [--out snap.json]
//! zeroer compact                    --model snap.json --base resolved.csv [--stats]
//! zeroer serve                      --model snap.json [--base resolved.csv]
//!                                   [--addr 127.0.0.1:7878] [--threads N]
//! zeroer gen --out dir              [--scale S] [--seed N] [--dup-rate R] [--linkage]
//! ```
//!
//! `match` links records across two CSVs with identical headers; `dedup`
//! finds duplicate rows inside one CSV. Output is CSV on stdout (or
//! `--out`): `left_id,right_id,probability` sorted by descending
//! probability, thresholded at `--threshold`.
//!
//! `dedup --save-model` additionally freezes the fitted model into a
//! JSON snapshot; `ingest` then streams new records against it — no EM
//! at ingest time — emitting one line per record:
//! `record,cluster,best_match,probability` (empty match fields for fresh
//! entities).
//!
//! `link` is the record-linkage (`match`-path) counterpart of `dedup
//! --save-model`: it fits the three-model linkage trainer and freezes
//! all three models into a linkage snapshot. `ingest --side left|right`
//! then streams side-tagged records against it: each record blocks only
//! against the *opposite* side's index and is scored with the frozen
//! cross model; `--base-left`/`--base-right` replay the persisted batch
//! decisions for the bootstrap tables.
//!
//! `serve` keeps the rebuilt pipeline resident and answers resolve /
//! ingest / admin requests over a length-prefixed TCP protocol (see
//! `crates/serve/README.md`): resolves run on the lock-free read path,
//! ingests are micro-batched through the single-writer write path.
//!
//! `retract` withdraws base records by index (one per line in the
//! `--ids` file): their clusters are rebuilt as if never ingested and
//! the tombstones are persisted back into the snapshot. `compact`
//! reclaims the index memory those tombstones pin (dead postings, empty
//! buckets, dead decision-log edges) and reports the freed bytes.

use std::process::ExitCode;
use zeroer::core::ZeroErConfig;
use zeroer::pipeline::{
    dedup_table, dedup_table_with_snapshot, match_tables, match_tables_with_snapshot,
    IngestOutcome, LinkPipeline, LinkSnapshot, MatchOptions, PipelineSnapshot, Side,
    StreamPipeline,
};
use zeroer::tabular::csv::{read_table, write_table};
use zeroer::tabular::{Schema, Table};

struct Args {
    command: String,
    files: Vec<String>,
    threshold: f64,
    overlap: usize,
    block_on: Option<String>,
    kappa: f64,
    transitivity: bool,
    out: Option<String>,
    save_model: Option<String>,
    model: Option<String>,
    base: Option<String>,
    base_left: Option<String>,
    base_right: Option<String>,
    side: Option<Side>,
    ids: Option<String>,
    threads: Option<usize>,
    stats: bool,
    metrics: Option<String>,
    addr: Option<String>,
    scale: f64,
    seed: u64,
    dup_rate: f64,
    linkage: bool,
}

fn usage() -> &'static str {
    "zeroer — entity resolution with zero labeled examples (SIGMOD 2020)\n\
     \n\
     USAGE:\n\
       zeroer match <left.csv> <right.csv> [flags]   link records across two tables\n\
       zeroer link <left.csv> <right.csv> --save-model <link.json> [flags]\n\
                                                     `match` + freeze the three-model linkage\n\
                                                     fit into a streaming snapshot\n\
       zeroer dedup <table.csv>            [flags]   find duplicates inside one table\n\
       zeroer ingest <stream.csv> --model <snap.json> [flags]\n\
                                                     stream records against a frozen model\n\
       zeroer ingest <stream.csv> --model <link.json> --side left|right\n\
                     --base-left <csv> --base-right <csv> [flags]\n\
                                                     stream side-tagged records against a\n\
                                                     frozen linkage snapshot (cross-table)\n\
       zeroer retract --ids <file> --model <snap.json> --base <csv> [flags]\n\
                                                     withdraw base records (indices, one per\n\
                                                     line); tombstones persist in the snapshot\n\
       zeroer compact --model <snap.json> --base <csv> [flags]\n\
                                                     drop tombstoned index state, report the\n\
                                                     reclaimed bytes\n\
       zeroer refresh --model <snap.json> --base <csv> [flags]\n\
                                                     re-fit the model over the snapshot's live\n\
                                                     records and write the refreshed snapshot\n\
       zeroer refresh --model <link.json> --base-left <csv> --base-right <csv> [flags]\n\
                                                     same, for a frozen linkage snapshot\n\
                                                     (re-runs the three-model joint fit)\n\
       zeroer serve --model <snap.json> [--base <csv>] [--addr <host:port>] [flags]\n\
                                                     serve resolve/ingest/admin requests over\n\
                                                     TCP until an admin shutdown arrives\n\
       zeroer gen --out <dir> [--scale <s>] [--seed <n>] [--dup-rate <r>] [--linkage]\n\
                                                     synthesize a seeded corpus with exact\n\
                                                     ground truth: corpus.csv + truth.csv\n\
                                                     (or left/right/truth.csv with --linkage)\n\
     \n\
     FLAGS:\n\
       --threshold <p>     posterior cut-off for reporting a match (default 0.5)\n\
       --overlap <n>       min shared title tokens for a candidate pair (default 1)\n\
       --block-on <attr>   attribute name to block on (default: first column)\n\
       --kappa <k>         regularization strength (default 0.15, the paper's)\n\
       --no-transitivity   disable the transitivity soft constraint\n\
       --out <file>        write results to a CSV file instead of stdout\n\
       --save-model <file> (dedup, link) freeze the fitted model(s) to a JSON snapshot\n\
       --model <file>      (ingest, retract, compact, refresh, serve) snapshot\n\
                           produced by --save-model\n\
       --base <csv>        (ingest) the resolved bootstrap records; their batch\n\
                           cluster decisions are replayed from the snapshot (never\n\
                           re-scored) when the snapshot carries them\n\
       --side <l|r>        (ingest) which table the streamed records belong to;\n\
                           requires a linkage snapshot from `zeroer link`\n\
       --base-left <csv>   (ingest --side) the left bootstrap table\n\
       --base-right <csv>  (ingest --side) the right bootstrap table\n\
       --threads <n>       (ingest, serve) ingest worker threads (default: all\n\
                           cores); results are identical for every thread count\n\
       --addr <host:port>  (serve) address to bind (default 127.0.0.1:0, an\n\
                           ephemeral port; the bound address is printed to stderr)\n\
       --ids <file>        (retract) record indices to withdraw, one per line\n\
                           ('#' comments and blank lines are skipped)\n\
       --scale <s>         (gen) size multiplier: records = s × 20000 (default 0.1;\n\
                           scale 1 ≈ 20k records, 10 ≈ 200k, 100 ≈ 2M)\n\
       --seed <n>          (gen) corpus RNG seed (default 42); the same seed always\n\
                           yields a byte-identical corpus and ground truth\n\
       --dup-rate <r>      (gen) fraction of records that are corrupted duplicates,\n\
                           strictly inside (0, 1) (default 0.3)\n\
       --linkage           (gen) emit a two-table linkage corpus instead of one\n\
                           dedup table\n\
       --stats             (dedup, link, ingest, retract, compact, serve) print derivation/\n\
                           blocking observability to stderr: tokens interned,\n\
                           live/retired buckets and live/dead postings per leg,\n\
                           candidate pairs, live/retracted records, epoch\n\
       --metrics <file>    (all commands) write every recorded counter, gauge and\n\
                           stage-latency histogram as JSON (schema zeroer-metrics-v1,\n\
                           documented in crates/obs/README.md)\n"
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        command: String::new(),
        files: Vec::new(),
        threshold: 0.5,
        overlap: 1,
        block_on: None,
        kappa: 0.15,
        transitivity: true,
        out: None,
        save_model: None,
        model: None,
        base: None,
        base_left: None,
        base_right: None,
        side: None,
        ids: None,
        threads: None,
        stats: false,
        metrics: None,
        addr: None,
        scale: 0.1,
        seed: 42,
        dup_rate: 0.3,
        linkage: false,
    };
    let mut gen_flags: Vec<&'static str> = Vec::new();
    let mut batch_flags: Vec<&'static str> = Vec::new();
    let mut it = argv.iter().peekable();
    let take_value = |it: &mut std::iter::Peekable<std::slice::Iter<String>>,
                      flag: &str|
     -> Result<String, String> {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => {
                args.threshold = take_value(&mut it, "--threshold")?
                    .parse()
                    .map_err(|_| "--threshold must be a number".to_string())?;
            }
            "--overlap" => {
                batch_flags.push("--overlap");
                args.overlap = take_value(&mut it, "--overlap")?
                    .parse()
                    .map_err(|_| "--overlap must be an integer".to_string())?;
            }
            "--block-on" => {
                batch_flags.push("--block-on");
                args.block_on = Some(take_value(&mut it, "--block-on")?);
            }
            "--kappa" => {
                batch_flags.push("--kappa");
                args.kappa = take_value(&mut it, "--kappa")?
                    .parse()
                    .map_err(|_| "--kappa must be a number".to_string())?;
            }
            "--no-transitivity" => {
                batch_flags.push("--no-transitivity");
                args.transitivity = false;
            }
            "--threads" => {
                let n: usize = take_value(&mut it, "--threads")?
                    .parse()
                    .map_err(|_| "--threads must be an integer".to_string())?;
                if n == 0 {
                    return Err("--threads must be at least 1".into());
                }
                args.threads = Some(n);
            }
            "--stats" => args.stats = true,
            "--metrics" => args.metrics = Some(take_value(&mut it, "--metrics")?),
            "--out" => args.out = Some(take_value(&mut it, "--out")?),
            "--save-model" => args.save_model = Some(take_value(&mut it, "--save-model")?),
            "--model" => args.model = Some(take_value(&mut it, "--model")?),
            "--base" => args.base = Some(take_value(&mut it, "--base")?),
            "--base-left" => args.base_left = Some(take_value(&mut it, "--base-left")?),
            "--base-right" => args.base_right = Some(take_value(&mut it, "--base-right")?),
            "--side" => {
                args.side = Some(match take_value(&mut it, "--side")?.as_str() {
                    "left" => Side::Left,
                    "right" => Side::Right,
                    other => return Err(format!("--side must be left or right, got {other:?}")),
                });
            }
            "--ids" => args.ids = Some(take_value(&mut it, "--ids")?),
            "--addr" => args.addr = Some(take_value(&mut it, "--addr")?),
            "--scale" => {
                gen_flags.push("--scale");
                args.scale = take_value(&mut it, "--scale")?
                    .parse()
                    .map_err(|_| "--scale must be a number".to_string())?;
            }
            "--seed" => {
                gen_flags.push("--seed");
                args.seed = take_value(&mut it, "--seed")?
                    .parse()
                    .map_err(|_| "--seed must be a non-negative integer".to_string())?;
            }
            "--dup-rate" => {
                gen_flags.push("--dup-rate");
                args.dup_rate = take_value(&mut it, "--dup-rate")?
                    .parse()
                    .map_err(|_| "--dup-rate must be a number".to_string())?;
            }
            "--linkage" => {
                gen_flags.push("--linkage");
                args.linkage = true;
            }
            "-h" | "--help" => return Err(String::new()),
            flag if flag.starts_with("--") => return Err(format!("unknown flag: {flag}")),
            positional => {
                if args.command.is_empty() {
                    args.command = positional.to_string();
                } else {
                    args.files.push(positional.to_string());
                }
            }
        }
    }
    if !(0.0..=1.0).contains(&args.threshold) {
        return Err("--threshold must lie in [0, 1]".into());
    }
    if args.save_model.is_some() && !matches!(args.command.as_str(), "dedup" | "link") {
        return Err("--save-model is only supported on the `dedup` and `link` batch paths".into());
    }
    if args.stats && args.command == "match" {
        return Err(
            "--stats is only supported by the `dedup`, `link`, `ingest`, `retract` and \
             `compact` commands"
                .into(),
        );
    }
    let snapshot_command = matches!(
        args.command.as_str(),
        "ingest" | "retract" | "compact" | "refresh" | "serve"
    );
    if !snapshot_command {
        if args.model.is_some() {
            return Err(
                "--model is only supported by the `ingest`, `retract`, `compact` and `serve` \
                 commands"
                    .into(),
            );
        }
        if args.base.is_some() {
            return Err(
                "--base is only supported by the `ingest`, `retract`, `compact` and `serve` \
                 commands"
                    .into(),
            );
        }
    } else if let Some(flag) = batch_flags.first() {
        return Err(format!(
            "{flag} configures the batch fit and is frozen in the snapshot; \
             it cannot be changed after fitting"
        ));
    }
    if args.side.is_some() && args.command != "ingest" {
        return Err("--side is only supported by the `ingest` command".into());
    }
    if (args.base_left.is_some() || args.base_right.is_some())
        && !matches!(args.command.as_str(), "ingest" | "refresh")
    {
        return Err(
            "--base-left/--base-right are only supported by the `ingest` and `refresh` commands"
                .into(),
        );
    }
    if args.command == "ingest" {
        if args.side.is_some() {
            if args.base.is_some() {
                return Err(
                    "--base is the dedup-path seed; linkage ingest takes --base-left and \
                     --base-right"
                        .into(),
                );
            }
            if args.base_left.is_none() || args.base_right.is_none() {
                return Err(
                    "`ingest --side` requires --base-left <csv> and --base-right <csv> (the \
                     bootstrap tables the linkage snapshot was fitted on)"
                        .into(),
                );
            }
        } else if args.base_left.is_some() || args.base_right.is_some() {
            return Err("--base-left/--base-right require --side left|right".into());
        }
    }
    if args.threads.is_some() && !matches!(args.command.as_str(), "ingest" | "serve") {
        return Err("--threads is only supported by the `ingest` and `serve` commands".into());
    }
    if args.ids.is_some() && args.command != "retract" {
        return Err("--ids is only supported by the `retract` command".into());
    }
    if args.addr.is_some() && args.command != "serve" {
        return Err("--addr is only supported by the `serve` command".into());
    }
    if args.command != "gen" {
        if let Some(flag) = gen_flags.first() {
            return Err(format!("{flag} is only supported by the `gen` command"));
        }
    }
    let need_model = |args: &Args, cmd: &str| -> Result<(), String> {
        if args.model.is_none() {
            return Err(format!("`{cmd}` requires --model <snapshot.json>"));
        }
        Ok(())
    };
    match (args.command.as_str(), args.files.len()) {
        ("match", 2) | ("dedup", 1) => Ok(args),
        ("gen", 0) => {
            if args.out.is_none() {
                return Err("`gen` requires --out <dir> (the corpus output directory)".into());
            }
            if let Some(flag) = batch_flags.first() {
                return Err(format!(
                    "{flag} configures the batch fit; it does not apply to `gen`"
                ));
            }
            Ok(args)
        }
        ("gen", n) => Err(format!(
            "`gen` takes no positional files (got {n}); the corpus is synthesized \
             from --scale/--seed"
        )),
        ("link", 2) => {
            if args.save_model.is_none() {
                return Err(
                    "`link` requires --save-model <link.json> (use `match` for a one-shot \
                     linkage without freezing)"
                        .into(),
                );
            }
            Ok(args)
        }
        ("ingest", 1) => {
            need_model(&args, "ingest")?;
            Ok(args)
        }
        ("retract", 0) => {
            need_model(&args, "retract")?;
            if args.ids.is_none() {
                return Err(
                    "`retract` requires --ids <file> (record indices, one per line)".into(),
                );
            }
            if args.base.is_none() {
                return Err(
                    "`retract` requires --base <csv> (the bootstrap records the \
                            snapshot indices refer to)"
                        .into(),
                );
            }
            Ok(args)
        }
        ("serve", 0) => {
            need_model(&args, "serve")?;
            Ok(args)
        }
        ("refresh", 0) => {
            need_model(&args, "refresh")?;
            let dedup_base = args.base.is_some();
            let link_base = args.base_left.is_some() && args.base_right.is_some();
            if dedup_base == link_base {
                return Err(
                    "`refresh` requires either --base <csv> (dedup snapshot) or \
                     --base-left <csv> --base-right <csv> (linkage snapshot)"
                        .into(),
                );
            }
            Ok(args)
        }
        ("compact", 0) => {
            need_model(&args, "compact")?;
            if args.base.is_none() {
                return Err(
                    "`compact` requires --base <csv> (the bootstrap records the \
                            snapshot tombstones refer to)"
                        .into(),
                );
            }
            Ok(args)
        }
        ("match", n) => Err(format!("`match` needs exactly two CSV files, got {n}")),
        ("link", n) => Err(format!("`link` needs exactly two CSV files, got {n}")),
        ("dedup", n) => Err(format!("`dedup` needs exactly one CSV file, got {n}")),
        ("ingest", n) => Err(format!(
            "`ingest` needs exactly one stream CSV file, got {n}"
        )),
        ("retract", n) | ("compact", n) | ("refresh", n) | ("serve", n) => Err(format!(
            "`{}` takes no positional files (got {n}); the store is rebuilt from \
             --model and --base",
            args.command
        )),
        (other, _) => Err(format!("unknown command: {other:?}")),
    }
}

fn load(path: &str) -> Result<Table, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    read_table(path, &text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn options(args: &Args, schema_probe: &Table) -> Result<MatchOptions, String> {
    let blocking_attr = match &args.block_on {
        None => 0,
        Some(name) => schema_probe
            .schema()
            .index_of(name)
            .ok_or_else(|| format!("no attribute named {name:?} in the input schema"))?,
    };
    Ok(MatchOptions {
        config: ZeroErConfig {
            kappa: args.kappa,
            transitivity: args.transitivity,
            ..Default::default()
        },
        blocking_attr,
        min_token_overlap: args.overlap,
    })
}

fn emit(rows: &[(usize, usize, f64)], out: &Option<String>) -> Result<(), String> {
    let mut text = String::from("left_id,right_id,probability\n");
    for (l, r, p) in rows {
        text.push_str(&format!("{l},{r},{p:.4}\n"));
    }
    match out {
        Some(path) => std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}")),
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&argv)?;
    dispatch(&args)?;
    if let Some(path) = &args.metrics {
        std::fs::write(path, zeroer::obs::to_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("zeroer: metrics written to {path}");
    }
    Ok(())
}

/// Runs the selected subcommand. Metric recording happens as a side
/// effect; `run` dumps the registry afterwards when `--metrics` asks
/// for it.
fn dispatch(args: &Args) -> Result<(), String> {
    let mut rows: Vec<(usize, usize, f64)>;
    match args.command.as_str() {
        "match" => {
            let left = load(&args.files[0])?;
            let right = load(&args.files[1])?;
            let opts = options(args, &left)?;
            let result = match_tables(&left, &right, &opts);
            rows = result
                .pairs
                .iter()
                .zip(&result.probabilities)
                .filter(|(_, &p)| p >= args.threshold)
                .map(|(&(l, r), &p)| (l, r, p))
                .collect();
            eprintln!(
                "zeroer: {} candidates, {} matches at threshold {}",
                result.pairs.len(),
                rows.len(),
                args.threshold
            );
        }
        "dedup" => {
            let table = load(&args.files[0])?;
            let opts = options(args, &table)?;
            let result = match &args.save_model {
                None => dedup_table(&table, &opts),
                Some(path) => {
                    let (result, pipeline) = dedup_table_with_snapshot(&table, &opts)
                        .map_err(|e| format!("cannot fit a model to freeze: {e}"))?;
                    let json = pipeline.snapshot().to_json();
                    std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
                    eprintln!("zeroer: model snapshot written to {path}");
                    result
                }
            };
            rows = result
                .pairs
                .iter()
                .zip(&result.probabilities)
                .filter(|(_, &p)| p >= args.threshold)
                .map(|(&(a, b), &p)| (a, b, p))
                .collect();
            eprintln!(
                "zeroer: {} candidates, {} duplicate pairs, {} clusters",
                result.pairs.len(),
                rows.len(),
                result.clusters.len()
            );
            if args.stats {
                render_stats();
            }
        }
        "gen" => return run_gen(args),
        "link" => return run_link(args),
        "ingest" => return run_ingest(args),
        "retract" => return run_retract(args),
        "compact" => return run_compact(args),
        "refresh" => return run_refresh(args),
        "serve" => return run_serve(args),
        _ => unreachable!("validated in parse_args"),
    }
    rows.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite probabilities"));
    emit(&rows, &args.out)
}

/// The `gen` subcommand: synthesize a seeded corpus with exact ground
/// truth into `--out <dir>`. The spec is validated and the corpus fully
/// generated in memory *before* the first filesystem write, and a failed
/// write removes everything this run already wrote — callers never see
/// partial output.
fn run_gen(args: &Args) -> Result<(), String> {
    use zeroer::datagen::{generate_dedup, generate_linkage, CorpusSpec};
    let spec = CorpusSpec {
        scale: args.scale,
        seed: args.seed,
        duplicate_rate: args.dup_rate,
        ..CorpusSpec::default()
    };
    let dir = std::path::Path::new(args.out.as_deref().expect("validated in parse_args"));

    // (file name, body) pairs — generation errors surface here, before
    // any directory or file exists.
    let outputs: Vec<(&'static str, String)> = if args.linkage {
        let corpus = generate_linkage(&spec).map_err(|e| format!("cannot generate: {e}"))?;
        eprintln!(
            "zeroer: generated linkage corpus (scale {}, seed {}): {} left + {} right records, \
             {} ground-truth matches",
            spec.scale,
            spec.seed,
            corpus.left.len(),
            corpus.right.len(),
            corpus.matches.len()
        );
        vec![
            ("left.csv", write_table(&corpus.left)),
            ("right.csv", write_table(&corpus.right)),
            ("truth.csv", corpus.truth_csv()),
        ]
    } else {
        let corpus = generate_dedup(&spec).map_err(|e| format!("cannot generate: {e}"))?;
        let pairs = corpus.truth_pairs().len();
        eprintln!(
            "zeroer: generated dedup corpus (scale {}, seed {}): {} records, \
             {} ground-truth duplicate pairs",
            spec.scale,
            spec.seed,
            corpus.table.len(),
            pairs
        );
        vec![
            ("corpus.csv", write_table(&corpus.table)),
            ("truth.csv", corpus.truth_csv()),
        ]
    };

    std::fs::create_dir_all(dir)
        .map_err(|e| format!("cannot create output directory {}: {e}", dir.display()))?;
    let mut written: Vec<std::path::PathBuf> = Vec::new();
    for (name, body) in &outputs {
        let path = dir.join(name);
        if let Err(e) = std::fs::write(&path, body) {
            for done in &written {
                let _ = std::fs::remove_file(done);
            }
            let _ = std::fs::remove_file(&path);
            return Err(format!(
                "cannot write {}: {e} (removed partial output)",
                path.display()
            ));
        }
        written.push(path);
    }
    for path in &written {
        eprintln!("zeroer: wrote {}", path.display());
    }
    Ok(())
}

/// The `link` subcommand: batch record linkage + freeze the three-model
/// fit into a linkage snapshot for `ingest --side`.
fn run_link(args: &Args) -> Result<(), String> {
    let left = load(&args.files[0])?;
    let right = load(&args.files[1])?;
    let opts = options(args, &left)?;
    let (result, pipeline) = match_tables_with_snapshot(&left, &right, &opts)
        .map_err(|e| format!("cannot fit a linkage model to freeze: {e}"))?;
    let path = args.save_model.as_deref().expect("validated in parse_args");
    std::fs::write(path, pipeline.snapshot().to_json())
        .map_err(|e| format!("cannot write {path}: {e}"))?;
    eprintln!("zeroer: linkage snapshot (3 models) written to {path}");
    let mut rows: Vec<(usize, usize, f64)> = result
        .pairs
        .iter()
        .zip(&result.probabilities)
        .filter(|(_, &p)| p >= args.threshold)
        .map(|(&(l, r), &p)| (l, r, p))
        .collect();
    eprintln!(
        "zeroer: {} cross candidates, {} matches at threshold {} ({} entity clusters)",
        result.pairs.len(),
        rows.len(),
        args.threshold,
        pipeline.clusters().len()
    );
    pipeline.stats().publish();
    if args.stats {
        render_stats();
    }
    rows.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite probabilities"));
    emit(&rows, &args.out)
}

/// The `ingest --side` subcommand: stream side-tagged records against a
/// frozen linkage snapshot.
fn run_link_ingest(args: &Args, side: Side) -> Result<(), String> {
    let model_path = args.model.as_deref().expect("validated in parse_args");
    let text = std::fs::read_to_string(model_path)
        .map_err(|e| format!("cannot read {model_path}: {e}"))?;
    let snapshot = LinkSnapshot::from_json(&text).map_err(|e| {
        if text.contains("zeroer-pipeline-snapshot") {
            format!(
                "{model_path} is a dedup snapshot (from `zeroer dedup --save-model`); \
                 `ingest --side` needs a linkage snapshot from `zeroer link --save-model`"
            )
        } else {
            format!("cannot parse {model_path}: {e}")
        }
    })?;
    let mut pipeline = LinkPipeline::from_snapshot(&snapshot, args.threshold)
        .map_err(|e| format!("cannot rebuild pipeline from {model_path}: {e}"))?;
    let schema = pipeline.store().table().schema().clone();

    let base_left = load(args.base_left.as_deref().expect("validated"))?;
    let base_right = load(args.base_right.as_deref().expect("validated"))?;
    check_snapshot_schema(&schema, &base_left)?;
    check_snapshot_schema(&schema, &base_right)?;
    pipeline
        .seed_base(&base_left, &base_right)
        .map_err(|e| format!("cannot seed base records: {e}"))?;
    eprintln!(
        "zeroer: pre-loaded {} left + {} right base records with preserved batch decisions \
         ({} clusters)",
        base_left.len(),
        base_right.len(),
        pipeline.clusters().len()
    );
    let base_offset = pipeline.len();

    let stream = load(&args.files[0])?;
    check_snapshot_schema(&schema, &stream)?;
    let threads = args
        .threads
        .unwrap_or_else(zeroer::stream::pipeline::available_threads);
    let outcomes = pipeline.ingest_batch_parallel(stream.records().to_vec(), side, threads);
    let fresh = outcomes.iter().filter(|o| o.is_new_entity()).count();
    let text = outcomes_csv(&outcomes, &|i| pipeline.store().find_readonly(i));
    eprintln!(
        "zeroer: ingested {} {}-side records ({} new entities, {} linked across; store {} → {} \
         records, {} clusters)",
        stream.len(),
        side.name(),
        fresh,
        stream.len() - fresh,
        base_offset,
        pipeline.len(),
        pipeline.clusters().len()
    );
    pipeline.stats().publish();
    if args.stats {
        render_stats();
    }
    emit_text(text, &args.out)
}

/// The `serve` subcommand: rebuild the pipeline from a frozen snapshot,
/// split it into read/write paths, and answer resolve/ingest/admin
/// requests over TCP until an admin `shutdown` arrives.
fn run_serve(args: &Args) -> Result<(), String> {
    let model_path = args.model.as_deref().expect("validated in parse_args");
    let text = std::fs::read_to_string(model_path)
        .map_err(|e| format!("cannot read {model_path}: {e}"))?;
    let snapshot = PipelineSnapshot::from_json(&text).map_err(|e| {
        if text.contains("zeroer-link-snapshot") {
            format!(
                "{model_path} is a linkage snapshot (from `zeroer link --save-model`); \
                 `serve` needs a dedup snapshot from `zeroer dedup --save-model`"
            )
        } else {
            format!("cannot parse {model_path}: {e}")
        }
    })?;
    let mut pipeline = StreamPipeline::from_snapshot(&snapshot, args.threshold)
        .map_err(|e| format!("cannot rebuild pipeline from {model_path}: {e}"))?;
    let schema = pipeline.store().table().schema().clone();
    let threads = args
        .threads
        .unwrap_or_else(zeroer::stream::pipeline::available_threads);
    if let Some(base_path) = &args.base {
        let base = load(base_path)?;
        check_snapshot_schema(&schema, &base)?;
        if snapshot.bootstrap_len > 0 {
            pipeline
                .seed_base(&base)
                .map_err(|e| format!("cannot seed base records from {base_path}: {e}"))?;
        } else {
            pipeline.ingest_batch_parallel(base.records().to_vec(), threads);
        }
        eprintln!(
            "zeroer: pre-loaded {} base records ({} clusters)",
            base.len(),
            pipeline.clusters().len()
        );
    }
    let server = zeroer::serve::Server::bind(
        pipeline,
        args.addr.as_deref().unwrap_or("127.0.0.1:0"),
        threads,
    )
    .map_err(|e| {
        format!(
            "cannot bind {}: {e}",
            args.addr.as_deref().unwrap_or("127.0.0.1:0")
        )
    })?;
    eprintln!("zeroer: serving on {}", server.local_addr());
    let pipeline = server.run();
    eprintln!(
        "zeroer: server drained ({} records, {} clusters)",
        pipeline.store().len(),
        pipeline.clusters().len()
    );
    pipeline.stats().publish();
    if args.stats {
        render_stats();
    }
    Ok(())
}

/// The `ingest` subcommand: stream records against a frozen snapshot.
fn run_ingest(args: &Args) -> Result<(), String> {
    if let Some(side) = args.side {
        return run_link_ingest(args, side);
    }
    let model_path = args.model.as_deref().expect("validated in parse_args");
    let text = std::fs::read_to_string(model_path)
        .map_err(|e| format!("cannot read {model_path}: {e}"))?;
    let snapshot = PipelineSnapshot::from_json(&text).map_err(|e| {
        if text.contains("zeroer-link-snapshot") {
            format!(
                "{model_path} is a linkage snapshot (from `zeroer link --save-model`); \
                 pass --side left|right (with --base-left/--base-right) to stream against it"
            )
        } else {
            format!("cannot parse {model_path}: {e}")
        }
    })?;
    let mut pipeline = StreamPipeline::from_snapshot(&snapshot, args.threshold)
        .map_err(|e| format!("cannot rebuild pipeline from {model_path}: {e}"))?;
    let schema = pipeline.store().table().schema().clone();

    let threads = args
        .threads
        .unwrap_or_else(zeroer::stream::pipeline::available_threads);

    if let Some(base_path) = &args.base {
        let base = load(base_path)?;
        check_snapshot_schema(&schema, &base)?;
        if snapshot.bootstrap_len > 0 {
            // The snapshot carries the batch fit's cluster decisions:
            // replay them exactly instead of re-scoring the base records
            // through the streaming path.
            pipeline
                .seed_base(&base)
                .map_err(|e| format!("cannot seed base records from {base_path}: {e}"))?;
            eprintln!(
                "zeroer: pre-loaded {} base records with preserved batch decisions ({} clusters)",
                base.len(),
                pipeline.clusters().len()
            );
        } else {
            // Legacy snapshot without bootstrap decisions: the only
            // option is streaming re-scoring.
            eprintln!(
                "zeroer: warning: {model_path} predates bootstrap persistence; \
                 re-scoring base records through the streaming path"
            );
            pipeline.ingest_batch_parallel(base.records().to_vec(), threads);
            eprintln!(
                "zeroer: pre-loaded {} base records ({} clusters)",
                base.len(),
                pipeline.clusters().len()
            );
        }
    }
    let base_offset = pipeline.store().len();

    let stream = load(&args.files[0])?;
    check_snapshot_schema(&schema, &stream)?;
    let outcomes = pipeline.ingest_batch_parallel(stream.records().to_vec(), threads);
    let fresh = outcomes.iter().filter(|o| o.is_new_entity()).count();
    let text = outcomes_csv(&outcomes, &|i| pipeline.store().find_readonly(i));
    eprintln!(
        "zeroer: ingested {} records ({} new entities, {} joined existing; store {} → {} records, {} duplicate clusters)",
        stream.len(),
        fresh,
        stream.len() - fresh,
        base_offset,
        pipeline.store().len(),
        pipeline.clusters().len()
    );
    pipeline.stats().publish();
    if args.stats {
        render_stats();
    }
    emit_text(text, &args.out)
}

/// Rejects a table whose schema differs from the snapshot's — shared by
/// every snapshot-seeded path.
fn check_snapshot_schema(expected: &Schema, table: &Table) -> Result<(), String> {
    if table.schema() != expected {
        return Err(format!(
            "schema of {} does not match the snapshot ({:?} vs {:?})",
            table.name(),
            table.schema().attributes(),
            expected.attributes()
        ));
    }
    Ok(())
}

/// The `record,cluster,best_match,probability` block both ingest paths
/// emit. Cluster ids are resolved only after the whole stream is
/// ingested: a later record can merge two earlier clusters, so each
/// record's *final* representative is what consumers should group by.
fn outcomes_csv(outcomes: &[IngestOutcome], cluster_of: &dyn Fn(usize) -> usize) -> String {
    let mut text = String::from("record,cluster,best_match,probability\n");
    for out in outcomes {
        let cluster = cluster_of(out.index);
        match out.matches.first() {
            Some(&(best, p)) => {
                text.push_str(&format!("{},{cluster},{best},{p:.4}\n", out.index));
            }
            None => {
                text.push_str(&format!("{},{cluster},,\n", out.index));
            }
        }
    }
    text
}

/// stdout-or-file result emit shared by the ingest paths.
fn emit_text(text: String, out: &Option<String>) -> Result<(), String> {
    match out {
        Some(path) => std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}")),
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

/// The `--stats` observability block shared by every subcommand that
/// supports it. The text itself is rendered by the shared
/// [`zeroer::pipeline::render_stats`] — the same function the serve
/// admin `stats` verb answers with, so CLI and wire output are
/// byte-identical.
fn render_stats() {
    eprint!("{}", zeroer::stream::render_stats());
}

/// Rebuilds a seeded pipeline from `--model` + `--base` — the shared
/// entry of the `retract` and `compact` subcommands, which both operate
/// on the bootstrap-record store.
fn load_pipeline_with_base(args: &Args) -> Result<StreamPipeline, String> {
    let model_path = args.model.as_deref().expect("validated in parse_args");
    let base_path = args.base.as_deref().expect("validated in parse_args");
    let text = std::fs::read_to_string(model_path)
        .map_err(|e| format!("cannot read {model_path}: {e}"))?;
    let snapshot = PipelineSnapshot::from_json(&text)
        .map_err(|e| format!("cannot parse {model_path}: {e}"))?;
    if snapshot.bootstrap_len == 0 {
        return Err(format!(
            "{model_path} carries no bootstrap decisions; `{}` needs a snapshot written \
             by `zeroer dedup --save-model`",
            args.command
        ));
    }
    let mut pipeline = StreamPipeline::from_snapshot(&snapshot, args.threshold)
        .map_err(|e| format!("cannot rebuild pipeline from {model_path}: {e}"))?;
    let base = load(base_path)?;
    check_snapshot_schema(pipeline.store().table().schema(), &base)?;
    pipeline
        .seed_base(&base)
        .map_err(|e| format!("cannot seed base records from {base_path}: {e}"))?;
    Ok(pipeline)
}

/// Parses a `--ids` file: record indices, one per line; `#` comments and
/// blank lines are skipped.
fn parse_ids(path: &str) -> Result<Vec<usize>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut ids = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        ids.push(
            line.parse()
                .map_err(|_| format!("{path}:{}: {line:?} is not a record index", lineno + 1))?,
        );
    }
    Ok(ids)
}

/// The `retract` subcommand: withdraw base records, persist tombstones.
fn run_retract(args: &Args) -> Result<(), String> {
    let mut pipeline = load_pipeline_with_base(args)?;
    let ids_path = args.ids.as_deref().expect("validated in parse_args");
    let ids = parse_ids(ids_path)?;
    if ids.is_empty() {
        return Err(format!("no record indices found in {ids_path}"));
    }
    let reports = pipeline
        .retract_batch(&ids)
        .map_err(|e| format!("cannot retract: {e}"))?;
    let postings: usize = reports.iter().map(|r| r.postings_tombstoned).sum();
    let largest = reports.iter().map(|r| r.component_size).max().unwrap_or(0);
    eprintln!(
        "zeroer: retracted {} records ({postings} index postings tombstoned, \
         largest component rebuilt: {largest} records; epoch {})",
        reports.len(),
        pipeline.epoch()
    );
    for auto in reports.iter().filter_map(|r| r.auto_compaction) {
        eprintln!(
            "zeroer: watermark compaction reclaimed {} bytes \
             ({} postings dropped, {} buckets freed)",
            auto.bytes_reclaimed(),
            auto.index.postings_dropped,
            auto.index.buckets_freed
        );
    }
    pipeline.stats().publish();
    if args.stats {
        render_stats();
    }
    let model_path = args.model.as_deref().expect("validated in parse_args");
    let out_path = args.out.as_deref().unwrap_or(model_path);
    std::fs::write(out_path, pipeline.snapshot().to_json())
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    eprintln!(
        "zeroer: snapshot with {} tombstones written to {out_path}",
        pipeline.store().retracted_count()
    );
    Ok(())
}

/// The `compact` subcommand: reclaim tombstoned index/store state.
fn run_compact(args: &Args) -> Result<(), String> {
    let mut pipeline = load_pipeline_with_base(args)?;
    let report = pipeline.compact();
    eprintln!(
        "zeroer: compaction reclaimed {} bytes ({} postings dropped, {} buckets freed, \
         {} decision edges pruned, {} derivation bytes freed; epoch {})",
        report.bytes_reclaimed(),
        report.index.postings_dropped,
        report.index.buckets_freed,
        report.store.decisions_pruned,
        report.store.derived_bytes_freed,
        report.epoch
    );
    pipeline.stats().publish();
    if args.stats {
        render_stats();
    }
    let model_path = args.model.as_deref().expect("validated in parse_args");
    let out_path = args.out.as_deref().unwrap_or(model_path);
    std::fs::write(out_path, pipeline.snapshot().to_json())
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    Ok(())
}

/// The `refresh` subcommand: re-fit the frozen model over the
/// snapshot's live records and write the refreshed snapshot — the
/// offline entry to the snapshot lifecycle (`admin refresh` is the
/// online one). Which flavor ran is decided by the base flags:
/// `--base` seeds a dedup snapshot, `--base-left`/`--base-right` a
/// linkage snapshot.
fn run_refresh(args: &Args) -> Result<(), String> {
    let model_path = args.model.as_deref().expect("validated in parse_args");
    let report = if args.base.is_some() {
        let mut pipeline = load_pipeline_with_base(args)?;
        let report = pipeline
            .refit()
            .map_err(|e| format!("cannot refresh {model_path}: {e}"))?;
        pipeline.stats().publish();
        if args.stats {
            render_stats();
        }
        let out_path = args.out.as_deref().unwrap_or(model_path);
        std::fs::write(out_path, pipeline.snapshot().to_json())
            .map_err(|e| format!("cannot write {out_path}: {e}"))?;
        eprintln!("zeroer: refreshed snapshot written to {out_path}");
        report
    } else {
        let text = std::fs::read_to_string(model_path)
            .map_err(|e| format!("cannot read {model_path}: {e}"))?;
        let snapshot = LinkSnapshot::from_json(&text).map_err(|e| {
            if text.contains("zeroer-pipeline-snapshot") {
                format!(
                    "{model_path} is a dedup snapshot (from `zeroer dedup --save-model`); \
                     refreshing it takes --base <csv>, not --base-left/--base-right"
                )
            } else {
                format!("cannot parse {model_path}: {e}")
            }
        })?;
        let mut pipeline = LinkPipeline::from_snapshot(&snapshot, args.threshold)
            .map_err(|e| format!("cannot rebuild pipeline from {model_path}: {e}"))?;
        let schema = pipeline.store().table().schema().clone();
        let base_left = load(args.base_left.as_deref().expect("validated"))?;
        let base_right = load(args.base_right.as_deref().expect("validated"))?;
        check_snapshot_schema(&schema, &base_left)?;
        check_snapshot_schema(&schema, &base_right)?;
        pipeline
            .seed_base(&base_left, &base_right)
            .map_err(|e| format!("cannot seed base records: {e}"))?;
        let report = pipeline
            .refit()
            .map_err(|e| format!("cannot refresh {model_path}: {e}"))?;
        pipeline.stats().publish();
        if args.stats {
            render_stats();
        }
        let out_path = args.out.as_deref().unwrap_or(model_path);
        std::fs::write(out_path, pipeline.snapshot().to_json())
            .map_err(|e| format!("cannot write {out_path}: {e}"))?;
        eprintln!("zeroer: refreshed linkage snapshot written to {out_path}");
        report
    };
    eprintln!(
        "zeroer: model re-fitted on {} live records ({} candidate pairs, {} EM iterations; \
         generation {})",
        report.records, report.pairs, report.em_iterations, report.generation
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) if msg.is_empty() => {
            eprint!("{}", usage());
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("error: {msg}\n\n{}", usage());
            ExitCode::FAILURE
        }
    }
}
