//! # ZeroER — entity resolution with zero labeled examples
//!
//! A full Rust reproduction of *ZeroER: Entity Resolution using Zero
//! Labeled Examples* (SIGMOD 2020; arXiv preprint title "AutoER"). The
//! workspace implements the paper's generative model plus every substrate
//! it depends on: similarity measures, Magellan-style automatic feature
//! generation, blocking, baselines, evaluation protocols and synthetic
//! benchmark generators.
//!
//! This façade crate re-exports the sub-crates and offers a high-level
//! [`pipeline`] API for the common cases:
//!
//! ```
//! use zeroer::pipeline::{match_tables, MatchOptions};
//! use zeroer::tabular::csv::read_table;
//!
//! let left = read_table(
//!     "restaurants-a",
//!     "name,city\n\
//!      Ritz Carlton Cafe,new york\n\
//!      Joe's Diner,boston\n\
//!      Golden Dragon Palace,seattle\n\
//!      Rustic Oak Kitchen,denver\n\
//!      Blue Harbor Grill,miami\n",
//! )
//! .unwrap();
//! let right = read_table(
//!     "restaurants-b",
//!     "name,city\n\
//!      Ritz-Carlton Café,new york city\n\
//!      Golden Dragon Palace,seattle\n\
//!      Rustic Oak Kitchn,denver\n\
//!      Smoky Cellar Tavern,austin\n\
//!      Harbor View Bistro,portland\n",
//! )
//! .unwrap();
//!
//! let result = match_tables(&left, &right, &MatchOptions::default());
//! assert!(result.matches().any(|(l, r, _)| l == 0 && r == 0));
//! assert!(result.matches().any(|(l, r, _)| l == 2 && r == 1));
//! ```
//!
//! Crate map:
//!
//! * [`core`] — the ZeroER generative model, EM, transitivity (§3–§6);
//! * [`features`] — automatic similarity-feature generation (§2.1);
//! * [`blocking`] — candidate-set generation;
//! * [`textsim`] — string/numeric similarity measures;
//! * [`tabular`] — records, schemas, type inference, CSV;
//! * [`linalg`] — the small dense linear algebra the model needs;
//! * [`baselines`] — k-means / GMM / ECM / LR / RF / MLP comparators (§7.1);
//! * [`eval`] — F-score, splits, CV, oversampling;
//! * [`datagen`] — synthetic stand-ins for the six benchmark datasets;
//! * [`stream`] — incremental entity resolution (online ingest, frozen
//!   model-snapshot scoring — no EM at serving time), including the
//!   read/write-path split ([`stream::SplitPipeline`]) the server is
//!   built on;
//! * [`serve`] — the `zeroer serve` TCP server: a length-prefixed JSON
//!   protocol with `resolve` (read path), `ingest` (write path) and
//!   `admin` verbs;
//! * [`obs`] — zero-dependency metrics registry and stage tracing; the
//!   batch and streaming pipelines record stage latencies and
//!   candidate/record counters into it, the CLI dumps it via
//!   `--metrics <file>` and renders `--stats` from it.
//!
//! ## Batch vs. streaming entry points
//!
//! * **Batch** ([`pipeline::match_tables`] / [`pipeline::dedup_table`]):
//!   one-shot resolution of complete tables. Every run re-blocks,
//!   re-featurizes and re-fits the generative model by EM.
//! * **Streaming** ([`pipeline::StreamPipeline`], re-exported from
//!   [`zeroer_stream`]): bootstrap once on an initial batch (one EM fit,
//!   frozen into a JSON-serializable [`pipeline::PipelineSnapshot`]),
//!   then `ingest` records continuously — incremental blocking indexes
//!   find candidates among everything already resolved, the frozen model
//!   scores them (E-step math only, zero EM iterations), and a
//!   union-find keeps clusters transitively consistent. The `zeroer`
//!   CLI exposes the same split: `zeroer dedup --save-model` writes a
//!   snapshot, `zeroer ingest` serves from it.

pub use zeroer_baselines as baselines;
pub use zeroer_blocking as blocking;
pub use zeroer_core as core;
pub use zeroer_datagen as datagen;
pub use zeroer_eval as eval;
pub use zeroer_features as features;
pub use zeroer_linalg as linalg;
pub use zeroer_obs as obs;
pub use zeroer_serve as serve;
pub use zeroer_stream as stream;
pub use zeroer_tabular as tabular;
pub use zeroer_textsim as textsim;

pub mod pipeline;

pub use crate::core::ZeroErConfig;
pub use pipeline::{dedup_table, match_tables, DedupResult, MatchOptions, MatchResult};
