//! High-level end-to-end matching pipelines.
//!
//! These wrap the full paper pipeline — blocking → automatic feature
//! generation → min-max normalization → the ZeroER generative model (with
//! the three-model transitivity trainer for record linkage) — behind two
//! calls: [`match_tables`] for record linkage (`T ≠ T'`) and
//! [`dedup_table`] for deduplication (`T = T'`).

use zeroer_blocking::{standard_recipe, Blocker, CandidateSet, PairMode};
use zeroer_core::{
    GenerativeModel, LinkageModel, LinkageTask, TransitivityCalibrator, UnionFind, ZeroErConfig,
};
use zeroer_features::PairFeaturizer;
use zeroer_tabular::Table;

pub use zeroer_stream::{
    BootstrapReport, IngestOutcome, PipelineSnapshot, StreamError, StreamOptions, StreamPipeline,
};

/// Options for the high-level pipelines.
#[derive(Debug, Clone)]
pub struct MatchOptions {
    /// Model configuration (defaults to the paper's full system).
    pub config: ZeroErConfig,
    /// Attribute index used as the blocking key (default 0 — the
    /// name/title column in every benchmark schema).
    pub blocking_attr: usize,
    /// Minimum shared word tokens for a candidate pair (1 = any shared
    /// token, unioned with q-gram blocking for typo robustness; ≥ 2 =
    /// overlap blocking for multi-word keys).
    pub min_token_overlap: usize,
}

impl Default for MatchOptions {
    fn default() -> Self {
        Self {
            config: ZeroErConfig::default(),
            blocking_attr: 0,
            min_token_overlap: 1,
        }
    }
}

impl MatchOptions {
    fn blocker(&self) -> Box<dyn Blocker + Send + Sync> {
        standard_recipe(self.blocking_attr, self.min_token_overlap, 4, 400)
    }
}

fn build_task(left: &Table, right: &Table, cs: &CandidateSet) -> LinkageTask {
    let fz = PairFeaturizer::new(left, right);
    let mut fs = fz.featurize(cs.pairs());
    fs.normalize();
    LinkageTask::new(fs.matrix, cs.pairs().to_vec(), fs.layout)
}

/// Result of [`match_tables`].
#[derive(Debug, Clone)]
pub struct MatchResult {
    /// Candidate pairs as `(left index, right index)`.
    pub pairs: Vec<(usize, usize)>,
    /// Posterior match probability per candidate pair.
    pub probabilities: Vec<f64>,
    /// Hard labels at the 0.5 posterior threshold (Eq. 5).
    pub labels: Vec<bool>,
}

impl MatchResult {
    /// Iterates over predicted matches as `(left, right, probability)`.
    pub fn matches(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.pairs
            .iter()
            .zip(&self.probabilities)
            .zip(&self.labels)
            .filter(|(_, &keep)| keep)
            .map(|(((l, r), &p), _)| (*l, *r, p))
    }

    /// Number of predicted matches.
    pub fn num_matches(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }
}

/// Record linkage between two tables with aligned schemas: the paper's
/// full pipeline with the three-model transitivity trainer (§5).
///
/// # Panics
/// Panics if the schemas differ.
pub fn match_tables(left: &Table, right: &Table, opts: &MatchOptions) -> MatchResult {
    assert_eq!(
        left.schema(),
        right.schema(),
        "match_tables requires aligned schemas"
    );
    let blocker = opts.blocker();
    let cross_cs = blocker.candidates(left, right, PairMode::Cross);
    if cross_cs.is_empty() {
        return MatchResult {
            pairs: vec![],
            probabilities: vec![],
            labels: vec![],
        };
    }
    let left_cs = blocker.candidates(left, left, PairMode::Dedup);
    let right_cs = blocker.candidates(right, right, PairMode::Dedup);

    let cross = build_task(left, right, &cross_cs);
    let left_task = build_task(left, left, &left_cs);
    let right_task = build_task(right, right, &right_cs);

    let out = LinkageModel::new(opts.config.clone()).fit(&cross, &left_task, &right_task);
    MatchResult {
        pairs: cross.pairs,
        probabilities: out.cross_gammas,
        labels: out.cross_labels,
    }
}

/// Result of [`dedup_table`].
#[derive(Debug, Clone)]
pub struct DedupResult {
    /// Candidate pairs as `(i, j)` with `i < j`.
    pub pairs: Vec<(usize, usize)>,
    /// Posterior duplicate probability per pair.
    pub probabilities: Vec<f64>,
    /// Hard labels at the 0.5 threshold.
    pub labels: Vec<bool>,
    /// Duplicate clusters: connected components over the predicted
    /// duplicate pairs (singletons omitted).
    pub clusters: Vec<Vec<usize>>,
}

/// Deduplicates one table: blocking within the table, one generative
/// model, transitivity calibration (§5's `T = T'` case), and a final
/// transitive-closure clustering of the predicted duplicates.
pub fn dedup_table(table: &Table, opts: &MatchOptions) -> DedupResult {
    let blocker = opts.blocker();
    let cs = blocker.candidates(table, table, PairMode::Dedup);
    if cs.is_empty() {
        return DedupResult {
            pairs: vec![],
            probabilities: vec![],
            labels: vec![],
            clusters: vec![],
        };
    }
    let task = build_task(table, table, &cs);
    let mut model = GenerativeModel::new(opts.config.clone(), task.layout.clone());
    let calibrator = TransitivityCalibrator::new(&task.pairs);
    model.fit(&task.features, Some(&calibrator));
    let labels = model.labels();
    let probabilities = model.gammas().to_vec();

    // Transitive closure over predicted duplicates, via the shared
    // union-find (the same structure `EntityStore` clusters with).
    let mut uf = UnionFind::new(table.len());
    for (&(a, b), &dup) in task.pairs.iter().zip(&labels) {
        if dup {
            uf.union(a, b);
        }
    }
    let clusters = uf.clusters(2);

    DedupResult {
        pairs: task.pairs,
        probabilities,
        labels,
        clusters,
    }
}

/// Like [`dedup_table`], but additionally freezes the fitted model (and
/// the feature/blocking replay state) into a [`PipelineSnapshot`] ready
/// for the streaming path and returns the live [`StreamPipeline`] seeded
/// with the batch decisions — the `zeroer dedup --save-model` path.
///
/// # Errors
/// Fails when blocking yields no candidate pairs (there is nothing to
/// fit, so there is nothing to freeze).
pub fn dedup_table_with_snapshot(
    table: &Table,
    opts: &MatchOptions,
) -> Result<(DedupResult, StreamPipeline), StreamError> {
    let stream_opts = StreamOptions {
        config: opts.config.clone(),
        blocking_attr: opts.blocking_attr,
        min_token_overlap: opts.min_token_overlap,
        ..StreamOptions::default()
    };
    let (pipeline, report) = StreamPipeline::bootstrap(table, stream_opts)?;
    let result = DedupResult {
        pairs: report.pairs,
        probabilities: report.probabilities,
        labels: report.labels,
        clusters: pipeline.clusters(),
    };
    Ok((result, pipeline))
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeroer_tabular::csv::read_table;

    fn left() -> Table {
        read_table(
            "l",
            "name,city,year\n\
             Golden Dragon Palace,new york,1999\n\
             Blue Sky Tavern,austin,2005\n\
             Rustic Oak Kitchen,denver,2010\n",
        )
        .unwrap()
    }

    fn right() -> Table {
        read_table(
            "r",
            "name,city,year\n\
             Golden Dragon Palace,new york,1999\n\
             Rustic Oak Kitchn,denver,2010\n\
             Totally Unrelated Bistro,miami,1987\n",
        )
        .unwrap()
    }

    #[test]
    fn match_tables_finds_obvious_pairs() {
        let result = match_tables(&left(), &right(), &MatchOptions::default());
        let matched: Vec<(usize, usize)> = result.matches().map(|(l, r, _)| (l, r)).collect();
        assert!(
            matched.contains(&(0, 0)),
            "exact duplicate must match: {matched:?}"
        );
        assert!(
            matched.contains(&(2, 1)),
            "typo'd duplicate must match: {matched:?}"
        );
        assert!(
            !matched.contains(&(1, 2)),
            "unrelated records must not match"
        );
    }

    #[test]
    fn dedup_clusters_duplicates() {
        let table = read_table(
            "t",
            "name,city\n\
             Golden Dragon,new york\n\
             Golden Dragon Palace,new york\n\
             Blue Sky Tavern,austin\n\
             Golden Dragn,new york\n",
        )
        .unwrap();
        let result = dedup_table(&table, &MatchOptions::default());
        assert_eq!(
            result.clusters.len(),
            1,
            "one duplicate cluster: {:?}",
            result.clusters
        );
        let cluster = &result.clusters[0];
        assert!(cluster.contains(&0) && cluster.contains(&3), "{cluster:?}");
    }

    #[test]
    fn dedup_with_snapshot_matches_plain_dedup() {
        let table = read_table(
            "t",
            "name,city\n\
             Golden Dragon,new york\n\
             Golden Dragon Palace,new york\n\
             Blue Sky Tavern,austin\n\
             Golden Dragn,new york\n\
             Harbor View Bistro,portland\n",
        )
        .unwrap();
        let opts = MatchOptions::default();
        let plain = dedup_table(&table, &opts);
        let (with_snap, pipeline) =
            dedup_table_with_snapshot(&table, &opts).expect("candidates exist");
        assert_eq!(plain.pairs, with_snap.pairs);
        assert_eq!(plain.labels, with_snap.labels);
        assert_eq!(plain.probabilities, with_snap.probabilities);
        assert_eq!(plain.clusters, with_snap.clusters);
        // The frozen snapshot round-trips through JSON.
        let snap = pipeline.snapshot();
        let reloaded = PipelineSnapshot::from_json(&snap.to_json()).expect("valid JSON");
        assert_eq!(reloaded.model, snap.model);
    }

    #[test]
    fn empty_candidate_sets_are_handled() {
        let l = read_table("l", "name\ncompletely\n").unwrap();
        let r = read_table("r", "name\ndifferent\n").unwrap();
        let result = match_tables(&l, &r, &MatchOptions::default());
        assert_eq!(result.num_matches(), 0);
        assert!(result.pairs.is_empty());
    }
}
