//! High-level end-to-end matching pipelines.
//!
//! These wrap the full paper pipeline — blocking → automatic feature
//! generation → min-max normalization → the ZeroER generative model (with
//! the three-model transitivity trainer for record linkage) — behind two
//! calls: [`match_tables`] for record linkage (`T ≠ T'`) and
//! [`dedup_table`] for deduplication (`T = T'`).
//!
//! Both pipelines derive each record **once** through the shared
//! derivation layer: the featurizer's derivation (interned token bags +
//! blocking keys) feeds blocking and feature generation alike, so no
//! call site here ever re-tokenizes raw attribute text.

use zeroer_blocking::{standard_candidates_derived, CandidateSet, PairMode};
use zeroer_core::{
    GenerativeModel, LinkageModel, LinkageTask, TransitivityCalibrator, UnionFind, ZeroErConfig,
};
use zeroer_features::{DeriveConfig, PairFeaturizer};
use zeroer_stream::build_linkage_legs;
use zeroer_tabular::Table;
use zeroer_textsim::derive::BlockSpec;

pub use zeroer_stream::{
    BootstrapReport, CompactionReport, IngestOutcome, LinkBootstrapReport, LinkPipeline,
    LinkSnapshot, PipelineSnapshot, RetractionReport, Side, StreamError, StreamOptions,
    StreamPipeline, StreamStats,
};

/// Options for the high-level pipelines.
#[derive(Debug, Clone)]
pub struct MatchOptions {
    /// Model configuration (defaults to the paper's full system).
    pub config: ZeroErConfig,
    /// Attribute index used as the blocking key (default 0 — the
    /// name/title column in every benchmark schema).
    pub blocking_attr: usize,
    /// Minimum shared word tokens for a candidate pair (1 = any shared
    /// token, unioned with q-gram blocking for typo robustness; ≥ 2 =
    /// overlap blocking).
    pub min_token_overlap: usize,
}

impl Default for MatchOptions {
    fn default() -> Self {
        Self {
            config: ZeroErConfig::default(),
            blocking_attr: 0,
            min_token_overlap: 1,
        }
    }
}

const STANDARD_QGRAM: usize = 4;
const STANDARD_MAX_BUCKET: usize = 400;

impl MatchOptions {
    /// The derivation configuration whose blocking keys the standard
    /// recipe consumes (no q-gram keys needed under overlap blocking).
    fn derive_config(&self) -> DeriveConfig {
        DeriveConfig {
            block: Some(BlockSpec {
                attr: self.blocking_attr,
                qgram: if self.min_token_overlap <= 1 {
                    STANDARD_QGRAM
                } else {
                    0
                },
                equiv: false,
            }),
        }
    }

    /// The standard-recipe candidate set over a featurizer's derivation.
    fn candidates(&self, fz: &PairFeaturizer, mode: PairMode) -> CandidateSet {
        let right = match mode {
            PairMode::Cross => Some(fz.right_derived()),
            PairMode::Dedup => None,
        };
        standard_candidates_derived(
            fz.left_derived(),
            right,
            mode,
            self.min_token_overlap,
            STANDARD_MAX_BUCKET,
        )
    }
}

/// Derivation observability of one pipeline run (`zeroer dedup --stats`).
#[derive(Debug, Clone, Copy, Default)]
pub struct DerivationStats {
    /// Distinct tokens interned across the run's derivations.
    pub distinct_tokens: usize,
    /// Bytes of distinct token text stored (each token once).
    pub interner_bytes: usize,
}

impl DerivationStats {
    fn of(fz: &PairFeaturizer) -> Self {
        Self {
            distinct_tokens: fz.interner().len(),
            interner_bytes: fz.interner().bytes(),
        }
    }
}

fn build_task(fz: &PairFeaturizer, cs: &CandidateSet) -> LinkageTask {
    zeroer_obs::time("batch.featurize.ns", || {
        let mut fs = fz.featurize(cs.pairs());
        fs.normalize();
        LinkageTask::new(fs.matrix, cs.pairs().to_vec(), fs.layout)
    })
}

/// Publishes the batch run's derivation/blocking gauges so
/// `--metrics` dumps and the unified `--stats` renderer see the same
/// numbers the streaming paths report. Gauge names match
/// [`StreamStats::publish`].
fn publish_batch_gauges(stats: &DerivationStats, candidate_pairs: usize) {
    zeroer_obs::gauge("derive.interned_tokens").set(stats.distinct_tokens as u64);
    zeroer_obs::gauge("derive.interned_bytes").set(stats.interner_bytes as u64);
    zeroer_obs::gauge("block.candidate_pairs").set(candidate_pairs as u64);
}

/// Result of [`match_tables`].
#[derive(Debug, Clone)]
pub struct MatchResult {
    /// Candidate pairs as `(left index, right index)`.
    pub pairs: Vec<(usize, usize)>,
    /// Posterior match probability per candidate pair.
    pub probabilities: Vec<f64>,
    /// Hard labels at the 0.5 posterior threshold (Eq. 5).
    pub labels: Vec<bool>,
}

impl MatchResult {
    /// Iterates over predicted matches as `(left, right, probability)`.
    pub fn matches(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.pairs
            .iter()
            .zip(&self.probabilities)
            .zip(&self.labels)
            .filter(|(_, &keep)| keep)
            .map(|(((l, r), &p), _)| (*l, *r, p))
    }

    /// Number of predicted matches.
    pub fn num_matches(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }
}

/// Record linkage between two tables with aligned schemas: the paper's
/// full pipeline with the three-model transitivity trainer (§5).
///
/// # Panics
/// Panics if the schemas differ.
pub fn match_tables(left: &Table, right: &Table, opts: &MatchOptions) -> MatchResult {
    assert_eq!(
        left.schema(),
        right.schema(),
        "match_tables requires aligned schemas"
    );
    // The shared three-featurizer recipe, implemented once in
    // `zeroer_stream::legs` and used verbatim by the streaming
    // `LinkPipeline::bootstrap` as well.
    let prep = build_linkage_legs(
        left,
        right,
        &opts.derive_config(),
        opts.min_token_overlap,
        STANDARD_MAX_BUCKET,
    );
    let Some(legs) = prep.legs else {
        publish_batch_gauges(&DerivationStats::of(&prep.cross_fz), 0);
        return MatchResult {
            pairs: vec![],
            probabilities: vec![],
            labels: vec![],
        };
    };
    publish_batch_gauges(
        &DerivationStats::of(&prep.cross_fz),
        legs.cross.task.pairs.len(),
    );
    zeroer_obs::counter("batch.candidates").add(legs.candidates as u64);

    let out = zeroer_obs::time("batch.fit.ns", || {
        LinkageModel::new(opts.config.clone()).fit(
            &legs.cross.task,
            &legs.left.task,
            &legs.right.task,
        )
    });
    MatchResult {
        pairs: legs.cross.task.pairs,
        probabilities: out.cross_gammas,
        labels: out.cross_labels,
    }
}

/// Like [`match_tables`], but additionally freezes the three fitted
/// models (cross, within-left, within-right) plus the feature/blocking
/// replay state into a [`LinkSnapshot`] and returns the live
/// [`LinkPipeline`] seeded with the batch decisions — the `zeroer link
/// --save-model` path. At the default threshold the reported pairs,
/// probabilities and labels are identical to [`match_tables`]'s.
///
/// # Errors
/// Fails when the schemas differ, cross blocking yields no candidate
/// pairs, or the fit is too degenerate to freeze.
pub fn match_tables_with_snapshot(
    left: &Table,
    right: &Table,
    opts: &MatchOptions,
) -> Result<(MatchResult, LinkPipeline), StreamError> {
    let stream_opts = StreamOptions {
        config: opts.config.clone(),
        blocking_attr: opts.blocking_attr,
        min_token_overlap: opts.min_token_overlap,
        ..StreamOptions::default()
    };
    let (pipeline, report) = LinkPipeline::bootstrap(left, right, stream_opts)?;
    Ok((
        MatchResult {
            pairs: report.pairs,
            probabilities: report.probabilities,
            labels: report.labels,
        },
        pipeline,
    ))
}

/// Result of [`dedup_table`].
#[derive(Debug, Clone)]
pub struct DedupResult {
    /// Candidate pairs as `(i, j)` with `i < j`.
    pub pairs: Vec<(usize, usize)>,
    /// Posterior duplicate probability per pair.
    pub probabilities: Vec<f64>,
    /// Hard labels at the 0.5 threshold.
    pub labels: Vec<bool>,
    /// Duplicate clusters: connected components over the predicted
    /// duplicate pairs (singletons omitted).
    pub clusters: Vec<Vec<usize>>,
    /// Derivation observability (`--stats`).
    pub stats: DerivationStats,
}

/// Deduplicates one table: blocking within the table, one generative
/// model, transitivity calibration (§5's `T = T'` case), and a final
/// transitive-closure clustering of the predicted duplicates. The table
/// is derived exactly once; blocking and featurization share the
/// derivation.
pub fn dedup_table(table: &Table, opts: &MatchOptions) -> DedupResult {
    let fz = zeroer_obs::time("batch.derive.ns", || {
        PairFeaturizer::with_config(table, table, opts.derive_config())
    });
    let stats = DerivationStats::of(&fz);
    let cs = zeroer_obs::time("batch.block.ns", || opts.candidates(&fz, PairMode::Dedup));
    publish_batch_gauges(&stats, cs.pairs().len());
    zeroer_obs::counter("batch.candidates").add(cs.pairs().len() as u64);
    if cs.is_empty() {
        return DedupResult {
            pairs: vec![],
            probabilities: vec![],
            labels: vec![],
            clusters: vec![],
            stats,
        };
    }
    let task = build_task(&fz, &cs);
    let mut model = GenerativeModel::new(opts.config.clone(), task.layout.clone());
    let calibrator = TransitivityCalibrator::new(&task.pairs);
    zeroer_obs::time("batch.fit.ns", || {
        model.fit(&task.features, Some(&calibrator));
    });
    let labels = model.labels();
    let probabilities = model.gammas().to_vec();

    // Transitive closure over predicted duplicates, via the shared
    // union-find (the same structure `EntityStore` clusters with).
    let clusters = zeroer_obs::time("batch.cluster.ns", || {
        let mut uf = UnionFind::new(table.len());
        for (&(a, b), &dup) in task.pairs.iter().zip(&labels) {
            if dup {
                uf.union(a, b);
            }
        }
        uf.clusters(2)
    });

    DedupResult {
        pairs: task.pairs,
        probabilities,
        labels,
        clusters,
        stats,
    }
}

/// Like [`dedup_table`], but additionally freezes the fitted model (and
/// the feature/blocking replay state) into a [`PipelineSnapshot`] ready
/// for the streaming path and returns the live [`StreamPipeline`] seeded
/// with the batch decisions — the `zeroer dedup --save-model` path.
///
/// # Errors
/// Fails when blocking yields no candidate pairs (there is nothing to
/// fit, so there is nothing to freeze).
pub fn dedup_table_with_snapshot(
    table: &Table,
    opts: &MatchOptions,
) -> Result<(DedupResult, StreamPipeline), StreamError> {
    let stream_opts = StreamOptions {
        config: opts.config.clone(),
        blocking_attr: opts.blocking_attr,
        min_token_overlap: opts.min_token_overlap,
        ..StreamOptions::default()
    };
    let (pipeline, report) = StreamPipeline::bootstrap(table, stream_opts)?;
    let stream_stats = pipeline.stats();
    let result = DedupResult {
        pairs: report.pairs,
        probabilities: report.probabilities,
        labels: report.labels,
        clusters: pipeline.clusters(),
        stats: DerivationStats {
            distinct_tokens: stream_stats.interned_tokens,
            interner_bytes: stream_stats.interned_bytes,
        },
    };
    publish_batch_gauges(&result.stats, result.pairs.len());
    Ok((result, pipeline))
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeroer_tabular::csv::read_table;

    fn left() -> Table {
        read_table(
            "l",
            "name,city,year\n\
             Golden Dragon Palace,new york,1999\n\
             Blue Sky Tavern,austin,2005\n\
             Rustic Oak Kitchen,denver,2010\n",
        )
        .unwrap()
    }

    fn right() -> Table {
        read_table(
            "r",
            "name,city,year\n\
             Golden Dragon Palace,new york,1999\n\
             Rustic Oak Kitchn,denver,2010\n\
             Totally Unrelated Bistro,miami,1987\n",
        )
        .unwrap()
    }

    #[test]
    fn match_tables_finds_obvious_pairs() {
        let result = match_tables(&left(), &right(), &MatchOptions::default());
        let matched: Vec<(usize, usize)> = result.matches().map(|(l, r, _)| (l, r)).collect();
        assert!(
            matched.contains(&(0, 0)),
            "exact duplicate must match: {matched:?}"
        );
        assert!(
            matched.contains(&(2, 1)),
            "typo'd duplicate must match: {matched:?}"
        );
        assert!(
            !matched.contains(&(1, 2)),
            "unrelated records must not match"
        );
    }

    #[test]
    fn dedup_clusters_duplicates() {
        let table = read_table(
            "t",
            "name,city\n\
             Golden Dragon,new york\n\
             Golden Dragon Palace,new york\n\
             Blue Sky Tavern,austin\n\
             Golden Dragn,new york\n",
        )
        .unwrap();
        let result = dedup_table(&table, &MatchOptions::default());
        assert_eq!(
            result.clusters.len(),
            1,
            "one duplicate cluster: {:?}",
            result.clusters
        );
        let cluster = &result.clusters[0];
        assert!(cluster.contains(&0) && cluster.contains(&3), "{cluster:?}");
        assert!(result.stats.distinct_tokens > 0, "stats are populated");
    }

    #[test]
    fn dedup_with_snapshot_matches_plain_dedup() {
        let table = read_table(
            "t",
            "name,city\n\
             Golden Dragon,new york\n\
             Golden Dragon Palace,new york\n\
             Blue Sky Tavern,austin\n\
             Golden Dragn,new york\n\
             Harbor View Bistro,portland\n",
        )
        .unwrap();
        let opts = MatchOptions::default();
        let plain = dedup_table(&table, &opts);
        let (with_snap, pipeline) =
            dedup_table_with_snapshot(&table, &opts).expect("candidates exist");
        assert_eq!(plain.pairs, with_snap.pairs);
        assert_eq!(plain.labels, with_snap.labels);
        assert_eq!(plain.probabilities, with_snap.probabilities);
        assert_eq!(plain.clusters, with_snap.clusters);
        // Both paths derived the same table with the same config: the
        // interner statistics must agree exactly.
        assert_eq!(plain.stats.distinct_tokens, with_snap.stats.distinct_tokens);
        // The frozen snapshot round-trips through JSON.
        let snap = pipeline.snapshot();
        let reloaded = PipelineSnapshot::from_json(&snap.to_json()).expect("valid JSON");
        assert_eq!(reloaded.model, snap.model);
    }

    #[test]
    fn match_with_snapshot_matches_plain_match() {
        let (l, r) = (left(), right());
        let opts = MatchOptions::default();
        let plain = match_tables(&l, &r, &opts);
        let (with_snap, pipeline) =
            match_tables_with_snapshot(&l, &r, &opts).expect("candidates exist");
        assert_eq!(plain.pairs, with_snap.pairs);
        assert_eq!(plain.labels, with_snap.labels);
        for (a, b) in plain.probabilities.iter().zip(&with_snap.probabilities) {
            assert_eq!(a.to_bits(), b.to_bits(), "posterior drift");
        }
        // Every predicted cross match appears as a cross link of the
        // seeded pipeline (transitive closure can only add links).
        let links = pipeline.cross_links();
        let nl = l.len();
        for (li, ri, _) in plain.matches() {
            assert!(links.contains(&(li, nl + ri)), "missing link ({li},{ri})");
        }
        // The frozen snapshot round-trips through JSON.
        let snap = pipeline.snapshot();
        let reloaded = LinkSnapshot::from_json(&snap.to_json()).expect("valid JSON");
        assert_eq!(reloaded.linkage, snap.linkage);
    }

    #[test]
    fn empty_candidate_sets_are_handled() {
        let l = read_table("l", "name\ncompletely\n").unwrap();
        let r = read_table("r", "name\ndifferent\n").unwrap();
        let result = match_tables(&l, &r, &MatchOptions::default());
        assert_eq!(result.num_matches(), 0);
        assert!(result.pairs.is_empty());
    }
}
