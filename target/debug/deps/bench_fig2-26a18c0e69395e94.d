/root/repo/target/debug/deps/bench_fig2-26a18c0e69395e94.d: crates/bench/benches/bench_fig2.rs

/root/repo/target/debug/deps/libbench_fig2-26a18c0e69395e94.rmeta: crates/bench/benches/bench_fig2.rs

crates/bench/benches/bench_fig2.rs:
