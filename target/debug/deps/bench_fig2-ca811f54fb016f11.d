/root/repo/target/debug/deps/bench_fig2-ca811f54fb016f11.d: crates/bench/benches/bench_fig2.rs Cargo.toml

/root/repo/target/debug/deps/libbench_fig2-ca811f54fb016f11.rmeta: crates/bench/benches/bench_fig2.rs Cargo.toml

crates/bench/benches/bench_fig2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
