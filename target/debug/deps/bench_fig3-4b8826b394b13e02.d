/root/repo/target/debug/deps/bench_fig3-4b8826b394b13e02.d: crates/bench/benches/bench_fig3.rs

/root/repo/target/debug/deps/libbench_fig3-4b8826b394b13e02.rmeta: crates/bench/benches/bench_fig3.rs

crates/bench/benches/bench_fig3.rs:
