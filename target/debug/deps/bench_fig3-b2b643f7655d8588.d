/root/repo/target/debug/deps/bench_fig3-b2b643f7655d8588.d: crates/bench/benches/bench_fig3.rs Cargo.toml

/root/repo/target/debug/deps/libbench_fig3-b2b643f7655d8588.rmeta: crates/bench/benches/bench_fig3.rs Cargo.toml

crates/bench/benches/bench_fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
