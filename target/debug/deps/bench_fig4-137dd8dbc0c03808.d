/root/repo/target/debug/deps/bench_fig4-137dd8dbc0c03808.d: crates/bench/benches/bench_fig4.rs

/root/repo/target/debug/deps/libbench_fig4-137dd8dbc0c03808.rmeta: crates/bench/benches/bench_fig4.rs

crates/bench/benches/bench_fig4.rs:
