/root/repo/target/debug/deps/bench_fig4-4534e6a6fa0b8c4b.d: crates/bench/benches/bench_fig4.rs Cargo.toml

/root/repo/target/debug/deps/libbench_fig4-4534e6a6fa0b8c4b.rmeta: crates/bench/benches/bench_fig4.rs Cargo.toml

crates/bench/benches/bench_fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
