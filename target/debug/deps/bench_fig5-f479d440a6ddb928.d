/root/repo/target/debug/deps/bench_fig5-f479d440a6ddb928.d: crates/bench/benches/bench_fig5.rs

/root/repo/target/debug/deps/libbench_fig5-f479d440a6ddb928.rmeta: crates/bench/benches/bench_fig5.rs

crates/bench/benches/bench_fig5.rs:
