/root/repo/target/debug/deps/bench_stream-1d6a9a1915921785.d: crates/stream/benches/bench_stream.rs Cargo.toml

/root/repo/target/debug/deps/libbench_stream-1d6a9a1915921785.rmeta: crates/stream/benches/bench_stream.rs Cargo.toml

crates/stream/benches/bench_stream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
