/root/repo/target/debug/deps/bench_stream-fea1bee797b2d78d.d: crates/stream/benches/bench_stream.rs

/root/repo/target/debug/deps/libbench_stream-fea1bee797b2d78d.rmeta: crates/stream/benches/bench_stream.rs

crates/stream/benches/bench_stream.rs:
