/root/repo/target/debug/deps/bench_table1-039d5fefc0fdf8be.d: crates/bench/benches/bench_table1.rs

/root/repo/target/debug/deps/libbench_table1-039d5fefc0fdf8be.rmeta: crates/bench/benches/bench_table1.rs

crates/bench/benches/bench_table1.rs:
