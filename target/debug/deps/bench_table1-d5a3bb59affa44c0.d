/root/repo/target/debug/deps/bench_table1-d5a3bb59affa44c0.d: crates/bench/benches/bench_table1.rs Cargo.toml

/root/repo/target/debug/deps/libbench_table1-d5a3bb59affa44c0.rmeta: crates/bench/benches/bench_table1.rs Cargo.toml

crates/bench/benches/bench_table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
