/root/repo/target/debug/deps/bench_table2-110744904d1208a2.d: crates/bench/benches/bench_table2.rs

/root/repo/target/debug/deps/libbench_table2-110744904d1208a2.rmeta: crates/bench/benches/bench_table2.rs

crates/bench/benches/bench_table2.rs:
