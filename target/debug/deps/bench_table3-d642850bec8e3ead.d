/root/repo/target/debug/deps/bench_table3-d642850bec8e3ead.d: crates/bench/benches/bench_table3.rs

/root/repo/target/debug/deps/libbench_table3-d642850bec8e3ead.rmeta: crates/bench/benches/bench_table3.rs

crates/bench/benches/bench_table3.rs:
