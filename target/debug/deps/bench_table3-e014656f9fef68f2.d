/root/repo/target/debug/deps/bench_table3-e014656f9fef68f2.d: crates/bench/benches/bench_table3.rs Cargo.toml

/root/repo/target/debug/deps/libbench_table3-e014656f9fef68f2.rmeta: crates/bench/benches/bench_table3.rs Cargo.toml

crates/bench/benches/bench_table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
