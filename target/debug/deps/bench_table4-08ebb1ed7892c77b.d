/root/repo/target/debug/deps/bench_table4-08ebb1ed7892c77b.d: crates/bench/benches/bench_table4.rs Cargo.toml

/root/repo/target/debug/deps/libbench_table4-08ebb1ed7892c77b.rmeta: crates/bench/benches/bench_table4.rs Cargo.toml

crates/bench/benches/bench_table4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
