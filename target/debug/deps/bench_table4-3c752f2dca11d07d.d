/root/repo/target/debug/deps/bench_table4-3c752f2dca11d07d.d: crates/bench/benches/bench_table4.rs

/root/repo/target/debug/deps/libbench_table4-3c752f2dca11d07d.rmeta: crates/bench/benches/bench_table4.rs

crates/bench/benches/bench_table4.rs:
