/root/repo/target/debug/deps/cli-16a2a96678242eb5.d: tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-16a2a96678242eb5.rmeta: tests/cli.rs Cargo.toml

tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_zeroer=placeholder:zeroer
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
