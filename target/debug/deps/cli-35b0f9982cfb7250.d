/root/repo/target/debug/deps/cli-35b0f9982cfb7250.d: tests/cli.rs

/root/repo/target/debug/deps/libcli-35b0f9982cfb7250.rmeta: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_zeroer=placeholder:zeroer
