/root/repo/target/debug/deps/cli-f32e7e940fe34b4f.d: tests/cli.rs

/root/repo/target/debug/deps/cli-f32e7e940fe34b4f: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_zeroer=/root/repo/target/debug/zeroer
