/root/repo/target/debug/deps/criterion-b671900dd97e03ca.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-b671900dd97e03ca.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
