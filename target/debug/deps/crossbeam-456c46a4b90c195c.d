/root/repo/target/debug/deps/crossbeam-456c46a4b90c195c.d: vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-456c46a4b90c195c.rmeta: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
