/root/repo/target/debug/deps/crossbeam-afc1a6a68418b370.d: vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-afc1a6a68418b370.rmeta: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
