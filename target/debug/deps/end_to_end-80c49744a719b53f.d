/root/repo/target/debug/deps/end_to_end-80c49744a719b53f.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-80c49744a719b53f: tests/end_to_end.rs

tests/end_to_end.rs:
