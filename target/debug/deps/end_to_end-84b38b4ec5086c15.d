/root/repo/target/debug/deps/end_to_end-84b38b4ec5086c15.d: tests/end_to_end.rs

/root/repo/target/debug/deps/libend_to_end-84b38b4ec5086c15.rmeta: tests/end_to_end.rs

tests/end_to_end.rs:
