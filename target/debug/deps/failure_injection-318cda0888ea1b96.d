/root/repo/target/debug/deps/failure_injection-318cda0888ea1b96.d: tests/failure_injection.rs

/root/repo/target/debug/deps/libfailure_injection-318cda0888ea1b96.rmeta: tests/failure_injection.rs

tests/failure_injection.rs:
