/root/repo/target/debug/deps/failure_injection-9eab079809854b2e.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-9eab079809854b2e: tests/failure_injection.rs

tests/failure_injection.rs:
