/root/repo/target/debug/deps/failure_injection-c1ddb2d4fe8dbf6f.d: tests/failure_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfailure_injection-c1ddb2d4fe8dbf6f.rmeta: tests/failure_injection.rs Cargo.toml

tests/failure_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
