/root/repo/target/debug/deps/micro-1f433bf3830b7e2a.d: crates/bench/benches/micro.rs

/root/repo/target/debug/deps/libmicro-1f433bf3830b7e2a.rmeta: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
