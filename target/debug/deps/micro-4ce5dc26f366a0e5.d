/root/repo/target/debug/deps/micro-4ce5dc26f366a0e5.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-4ce5dc26f366a0e5.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
