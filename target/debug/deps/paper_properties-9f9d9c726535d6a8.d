/root/repo/target/debug/deps/paper_properties-9f9d9c726535d6a8.d: tests/paper_properties.rs

/root/repo/target/debug/deps/paper_properties-9f9d9c726535d6a8: tests/paper_properties.rs

tests/paper_properties.rs:
