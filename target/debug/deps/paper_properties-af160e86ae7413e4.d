/root/repo/target/debug/deps/paper_properties-af160e86ae7413e4.d: tests/paper_properties.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_properties-af160e86ae7413e4.rmeta: tests/paper_properties.rs Cargo.toml

tests/paper_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
