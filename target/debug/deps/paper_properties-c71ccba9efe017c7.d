/root/repo/target/debug/deps/paper_properties-c71ccba9efe017c7.d: tests/paper_properties.rs

/root/repo/target/debug/deps/libpaper_properties-c71ccba9efe017c7.rmeta: tests/paper_properties.rs

tests/paper_properties.rs:
