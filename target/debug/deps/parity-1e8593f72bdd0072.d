/root/repo/target/debug/deps/parity-1e8593f72bdd0072.d: crates/stream/tests/parity.rs

/root/repo/target/debug/deps/libparity-1e8593f72bdd0072.rmeta: crates/stream/tests/parity.rs

crates/stream/tests/parity.rs:
