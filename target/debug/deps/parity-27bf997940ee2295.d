/root/repo/target/debug/deps/parity-27bf997940ee2295.d: crates/stream/tests/parity.rs

/root/repo/target/debug/deps/parity-27bf997940ee2295: crates/stream/tests/parity.rs

crates/stream/tests/parity.rs:
