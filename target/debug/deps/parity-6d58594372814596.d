/root/repo/target/debug/deps/parity-6d58594372814596.d: crates/stream/tests/parity.rs Cargo.toml

/root/repo/target/debug/deps/libparity-6d58594372814596.rmeta: crates/stream/tests/parity.rs Cargo.toml

crates/stream/tests/parity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
