/root/repo/target/debug/deps/proptest-312674a1e28f3cab.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-312674a1e28f3cab.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-312674a1e28f3cab.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
