/root/repo/target/debug/deps/proptest-482af38654ecadad.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-482af38654ecadad.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
