/root/repo/target/debug/deps/proptest-b9813f84764bc99b.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-b9813f84764bc99b: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
