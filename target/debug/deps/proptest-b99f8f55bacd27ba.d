/root/repo/target/debug/deps/proptest-b99f8f55bacd27ba.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-b99f8f55bacd27ba.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
