/root/repo/target/debug/deps/proptest-c0b20dc497bd6631.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-c0b20dc497bd6631.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
