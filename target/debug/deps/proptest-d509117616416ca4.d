/root/repo/target/debug/deps/proptest-d509117616416ca4.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-d509117616416ca4.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
