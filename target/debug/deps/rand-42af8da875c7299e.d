/root/repo/target/debug/deps/rand-42af8da875c7299e.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-42af8da875c7299e.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
