/root/repo/target/debug/deps/serde-6214f34aaf837d1f.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-6214f34aaf837d1f.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
