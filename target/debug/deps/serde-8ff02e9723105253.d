/root/repo/target/debug/deps/serde-8ff02e9723105253.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/serde-8ff02e9723105253: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
