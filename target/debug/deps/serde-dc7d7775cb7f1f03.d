/root/repo/target/debug/deps/serde-dc7d7775cb7f1f03.d: vendor/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-dc7d7775cb7f1f03.rmeta: vendor/serde/src/lib.rs Cargo.toml

vendor/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
