/root/repo/target/debug/deps/serde-e03935d587ef10c3.d: vendor/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-e03935d587ef10c3.rmeta: vendor/serde/src/lib.rs Cargo.toml

vendor/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
