/root/repo/target/debug/deps/serde-e9c8de8e11d3d1e7.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-e9c8de8e11d3d1e7.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-e9c8de8e11d3d1e7.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
