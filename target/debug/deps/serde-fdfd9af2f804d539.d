/root/repo/target/debug/deps/serde-fdfd9af2f804d539.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-fdfd9af2f804d539.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
