/root/repo/target/debug/deps/serde_derive_stub-47c084f49653266a.d: vendor/serde-derive-stub/src/lib.rs

/root/repo/target/debug/deps/libserde_derive_stub-47c084f49653266a.rmeta: vendor/serde-derive-stub/src/lib.rs

vendor/serde-derive-stub/src/lib.rs:
