/root/repo/target/debug/deps/serde_derive_stub-4ad29fda173a4f5b.d: vendor/serde-derive-stub/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_derive_stub-4ad29fda173a4f5b.rmeta: vendor/serde-derive-stub/src/lib.rs Cargo.toml

vendor/serde-derive-stub/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
