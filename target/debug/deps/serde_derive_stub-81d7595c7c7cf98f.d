/root/repo/target/debug/deps/serde_derive_stub-81d7595c7c7cf98f.d: vendor/serde-derive-stub/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_derive_stub-81d7595c7c7cf98f.so: vendor/serde-derive-stub/src/lib.rs Cargo.toml

vendor/serde-derive-stub/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
