/root/repo/target/debug/deps/serde_derive_stub-82361cd2aa097ced.d: vendor/serde-derive-stub/src/lib.rs

/root/repo/target/debug/deps/serde_derive_stub-82361cd2aa097ced: vendor/serde-derive-stub/src/lib.rs

vendor/serde-derive-stub/src/lib.rs:
