/root/repo/target/debug/deps/serde_derive_stub-907c8a322434ed6f.d: vendor/serde-derive-stub/src/lib.rs

/root/repo/target/debug/deps/libserde_derive_stub-907c8a322434ed6f.rmeta: vendor/serde-derive-stub/src/lib.rs

vendor/serde-derive-stub/src/lib.rs:
