/root/repo/target/debug/deps/serde_derive_stub-e6b8406d581ad219.d: vendor/serde-derive-stub/src/lib.rs

/root/repo/target/debug/deps/libserde_derive_stub-e6b8406d581ad219.so: vendor/serde-derive-stub/src/lib.rs

vendor/serde-derive-stub/src/lib.rs:
