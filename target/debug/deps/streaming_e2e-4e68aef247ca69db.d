/root/repo/target/debug/deps/streaming_e2e-4e68aef247ca69db.d: crates/stream/tests/streaming_e2e.rs Cargo.toml

/root/repo/target/debug/deps/libstreaming_e2e-4e68aef247ca69db.rmeta: crates/stream/tests/streaming_e2e.rs Cargo.toml

crates/stream/tests/streaming_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
