/root/repo/target/debug/deps/streaming_e2e-6d0b32cb12c17096.d: crates/stream/tests/streaming_e2e.rs

/root/repo/target/debug/deps/libstreaming_e2e-6d0b32cb12c17096.rmeta: crates/stream/tests/streaming_e2e.rs

crates/stream/tests/streaming_e2e.rs:
