/root/repo/target/debug/deps/streaming_e2e-9e8b3f1245ce3ceb.d: crates/stream/tests/streaming_e2e.rs

/root/repo/target/debug/deps/streaming_e2e-9e8b3f1245ce3ceb: crates/stream/tests/streaming_e2e.rs

crates/stream/tests/streaming_e2e.rs:
