/root/repo/target/debug/deps/zeroer-11ff36088fb7daf2.d: src/bin/zeroer.rs

/root/repo/target/debug/deps/libzeroer-11ff36088fb7daf2.rmeta: src/bin/zeroer.rs

src/bin/zeroer.rs:
