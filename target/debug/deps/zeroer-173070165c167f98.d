/root/repo/target/debug/deps/zeroer-173070165c167f98.d: src/lib.rs src/pipeline.rs

/root/repo/target/debug/deps/zeroer-173070165c167f98: src/lib.rs src/pipeline.rs

src/lib.rs:
src/pipeline.rs:
