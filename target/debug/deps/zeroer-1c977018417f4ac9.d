/root/repo/target/debug/deps/zeroer-1c977018417f4ac9.d: src/lib.rs src/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libzeroer-1c977018417f4ac9.rmeta: src/lib.rs src/pipeline.rs Cargo.toml

src/lib.rs:
src/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
