/root/repo/target/debug/deps/zeroer-50c9fcd0de74e581.d: src/bin/zeroer.rs

/root/repo/target/debug/deps/zeroer-50c9fcd0de74e581: src/bin/zeroer.rs

src/bin/zeroer.rs:
