/root/repo/target/debug/deps/zeroer-5c20b59f08253747.d: src/bin/zeroer.rs Cargo.toml

/root/repo/target/debug/deps/libzeroer-5c20b59f08253747.rmeta: src/bin/zeroer.rs Cargo.toml

src/bin/zeroer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
