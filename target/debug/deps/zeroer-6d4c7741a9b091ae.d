/root/repo/target/debug/deps/zeroer-6d4c7741a9b091ae.d: src/lib.rs src/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libzeroer-6d4c7741a9b091ae.rmeta: src/lib.rs src/pipeline.rs Cargo.toml

src/lib.rs:
src/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
