/root/repo/target/debug/deps/zeroer-7854ee8af2a63953.d: src/bin/zeroer.rs

/root/repo/target/debug/deps/zeroer-7854ee8af2a63953: src/bin/zeroer.rs

src/bin/zeroer.rs:
