/root/repo/target/debug/deps/zeroer-a6b63085dbd8878f.d: src/lib.rs src/pipeline.rs

/root/repo/target/debug/deps/libzeroer-a6b63085dbd8878f.rmeta: src/lib.rs src/pipeline.rs

src/lib.rs:
src/pipeline.rs:
