/root/repo/target/debug/deps/zeroer-b9ba8017470ad341.d: src/lib.rs src/pipeline.rs

/root/repo/target/debug/deps/libzeroer-b9ba8017470ad341.rmeta: src/lib.rs src/pipeline.rs

src/lib.rs:
src/pipeline.rs:
