/root/repo/target/debug/deps/zeroer-cd262e0270d7125e.d: src/bin/zeroer.rs

/root/repo/target/debug/deps/libzeroer-cd262e0270d7125e.rmeta: src/bin/zeroer.rs

src/bin/zeroer.rs:
