/root/repo/target/debug/deps/zeroer-d3510431504f3355.d: src/lib.rs src/pipeline.rs

/root/repo/target/debug/deps/libzeroer-d3510431504f3355.rlib: src/lib.rs src/pipeline.rs

/root/repo/target/debug/deps/libzeroer-d3510431504f3355.rmeta: src/lib.rs src/pipeline.rs

src/lib.rs:
src/pipeline.rs:
