/root/repo/target/debug/deps/zeroer-fdcfc695ac78faca.d: src/bin/zeroer.rs Cargo.toml

/root/repo/target/debug/deps/libzeroer-fdcfc695ac78faca.rmeta: src/bin/zeroer.rs Cargo.toml

src/bin/zeroer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
