/root/repo/target/debug/deps/zeroer_baselines-a0d04e5b7d4c9e6d.d: crates/baselines/src/lib.rs crates/baselines/src/common.rs crates/baselines/src/ecm.rs crates/baselines/src/forest.rs crates/baselines/src/gmm.rs crates/baselines/src/kmeans.rs crates/baselines/src/logreg.rs crates/baselines/src/mlp.rs crates/baselines/src/nbayes.rs crates/baselines/src/tree.rs crates/baselines/src/tuning.rs

/root/repo/target/debug/deps/libzeroer_baselines-a0d04e5b7d4c9e6d.rmeta: crates/baselines/src/lib.rs crates/baselines/src/common.rs crates/baselines/src/ecm.rs crates/baselines/src/forest.rs crates/baselines/src/gmm.rs crates/baselines/src/kmeans.rs crates/baselines/src/logreg.rs crates/baselines/src/mlp.rs crates/baselines/src/nbayes.rs crates/baselines/src/tree.rs crates/baselines/src/tuning.rs

crates/baselines/src/lib.rs:
crates/baselines/src/common.rs:
crates/baselines/src/ecm.rs:
crates/baselines/src/forest.rs:
crates/baselines/src/gmm.rs:
crates/baselines/src/kmeans.rs:
crates/baselines/src/logreg.rs:
crates/baselines/src/mlp.rs:
crates/baselines/src/nbayes.rs:
crates/baselines/src/tree.rs:
crates/baselines/src/tuning.rs:
