/root/repo/target/debug/deps/zeroer_baselines-d89f0d07591c77cc.d: crates/baselines/src/lib.rs crates/baselines/src/common.rs crates/baselines/src/ecm.rs crates/baselines/src/forest.rs crates/baselines/src/gmm.rs crates/baselines/src/kmeans.rs crates/baselines/src/logreg.rs crates/baselines/src/mlp.rs crates/baselines/src/nbayes.rs crates/baselines/src/tree.rs crates/baselines/src/tuning.rs Cargo.toml

/root/repo/target/debug/deps/libzeroer_baselines-d89f0d07591c77cc.rmeta: crates/baselines/src/lib.rs crates/baselines/src/common.rs crates/baselines/src/ecm.rs crates/baselines/src/forest.rs crates/baselines/src/gmm.rs crates/baselines/src/kmeans.rs crates/baselines/src/logreg.rs crates/baselines/src/mlp.rs crates/baselines/src/nbayes.rs crates/baselines/src/tree.rs crates/baselines/src/tuning.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/common.rs:
crates/baselines/src/ecm.rs:
crates/baselines/src/forest.rs:
crates/baselines/src/gmm.rs:
crates/baselines/src/kmeans.rs:
crates/baselines/src/logreg.rs:
crates/baselines/src/mlp.rs:
crates/baselines/src/nbayes.rs:
crates/baselines/src/tree.rs:
crates/baselines/src/tuning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
