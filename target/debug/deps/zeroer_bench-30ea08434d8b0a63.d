/root/repo/target/debug/deps/zeroer_bench-30ea08434d8b0a63.d: crates/bench/src/lib.rs crates/bench/src/experiment.rs crates/bench/src/matchers.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libzeroer_bench-30ea08434d8b0a63.rmeta: crates/bench/src/lib.rs crates/bench/src/experiment.rs crates/bench/src/matchers.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiment.rs:
crates/bench/src/matchers.rs:
crates/bench/src/table.rs:
