/root/repo/target/debug/deps/zeroer_bench-3498ec1ef4313e63.d: crates/bench/src/lib.rs crates/bench/src/experiment.rs crates/bench/src/matchers.rs crates/bench/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libzeroer_bench-3498ec1ef4313e63.rmeta: crates/bench/src/lib.rs crates/bench/src/experiment.rs crates/bench/src/matchers.rs crates/bench/src/table.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiment.rs:
crates/bench/src/matchers.rs:
crates/bench/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
