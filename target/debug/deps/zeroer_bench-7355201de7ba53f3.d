/root/repo/target/debug/deps/zeroer_bench-7355201de7ba53f3.d: crates/bench/src/lib.rs crates/bench/src/experiment.rs crates/bench/src/matchers.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/zeroer_bench-7355201de7ba53f3: crates/bench/src/lib.rs crates/bench/src/experiment.rs crates/bench/src/matchers.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiment.rs:
crates/bench/src/matchers.rs:
crates/bench/src/table.rs:
