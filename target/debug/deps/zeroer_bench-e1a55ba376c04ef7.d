/root/repo/target/debug/deps/zeroer_bench-e1a55ba376c04ef7.d: crates/bench/src/lib.rs crates/bench/src/experiment.rs crates/bench/src/matchers.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libzeroer_bench-e1a55ba376c04ef7.rmeta: crates/bench/src/lib.rs crates/bench/src/experiment.rs crates/bench/src/matchers.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiment.rs:
crates/bench/src/matchers.rs:
crates/bench/src/table.rs:
