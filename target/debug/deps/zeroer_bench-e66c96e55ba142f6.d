/root/repo/target/debug/deps/zeroer_bench-e66c96e55ba142f6.d: crates/bench/src/lib.rs crates/bench/src/experiment.rs crates/bench/src/matchers.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libzeroer_bench-e66c96e55ba142f6.rlib: crates/bench/src/lib.rs crates/bench/src/experiment.rs crates/bench/src/matchers.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libzeroer_bench-e66c96e55ba142f6.rmeta: crates/bench/src/lib.rs crates/bench/src/experiment.rs crates/bench/src/matchers.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiment.rs:
crates/bench/src/matchers.rs:
crates/bench/src/table.rs:
