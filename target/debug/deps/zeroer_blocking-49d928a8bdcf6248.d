/root/repo/target/debug/deps/zeroer_blocking-49d928a8bdcf6248.d: crates/blocking/src/lib.rs crates/blocking/src/blockers.rs crates/blocking/src/candidate.rs crates/blocking/src/keys.rs crates/blocking/src/quality.rs

/root/repo/target/debug/deps/libzeroer_blocking-49d928a8bdcf6248.rmeta: crates/blocking/src/lib.rs crates/blocking/src/blockers.rs crates/blocking/src/candidate.rs crates/blocking/src/keys.rs crates/blocking/src/quality.rs

crates/blocking/src/lib.rs:
crates/blocking/src/blockers.rs:
crates/blocking/src/candidate.rs:
crates/blocking/src/keys.rs:
crates/blocking/src/quality.rs:
