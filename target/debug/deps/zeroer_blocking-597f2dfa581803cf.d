/root/repo/target/debug/deps/zeroer_blocking-597f2dfa581803cf.d: crates/blocking/src/lib.rs crates/blocking/src/blockers.rs crates/blocking/src/candidate.rs crates/blocking/src/keys.rs crates/blocking/src/quality.rs Cargo.toml

/root/repo/target/debug/deps/libzeroer_blocking-597f2dfa581803cf.rmeta: crates/blocking/src/lib.rs crates/blocking/src/blockers.rs crates/blocking/src/candidate.rs crates/blocking/src/keys.rs crates/blocking/src/quality.rs Cargo.toml

crates/blocking/src/lib.rs:
crates/blocking/src/blockers.rs:
crates/blocking/src/candidate.rs:
crates/blocking/src/keys.rs:
crates/blocking/src/quality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
