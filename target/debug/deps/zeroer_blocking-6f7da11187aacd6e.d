/root/repo/target/debug/deps/zeroer_blocking-6f7da11187aacd6e.d: crates/blocking/src/lib.rs crates/blocking/src/blockers.rs crates/blocking/src/candidate.rs crates/blocking/src/keys.rs crates/blocking/src/quality.rs

/root/repo/target/debug/deps/libzeroer_blocking-6f7da11187aacd6e.rmeta: crates/blocking/src/lib.rs crates/blocking/src/blockers.rs crates/blocking/src/candidate.rs crates/blocking/src/keys.rs crates/blocking/src/quality.rs

crates/blocking/src/lib.rs:
crates/blocking/src/blockers.rs:
crates/blocking/src/candidate.rs:
crates/blocking/src/keys.rs:
crates/blocking/src/quality.rs:
