/root/repo/target/debug/deps/zeroer_blocking-df9415fecb28e08e.d: crates/blocking/src/lib.rs crates/blocking/src/blockers.rs crates/blocking/src/candidate.rs crates/blocking/src/keys.rs crates/blocking/src/quality.rs

/root/repo/target/debug/deps/libzeroer_blocking-df9415fecb28e08e.rlib: crates/blocking/src/lib.rs crates/blocking/src/blockers.rs crates/blocking/src/candidate.rs crates/blocking/src/keys.rs crates/blocking/src/quality.rs

/root/repo/target/debug/deps/libzeroer_blocking-df9415fecb28e08e.rmeta: crates/blocking/src/lib.rs crates/blocking/src/blockers.rs crates/blocking/src/candidate.rs crates/blocking/src/keys.rs crates/blocking/src/quality.rs

crates/blocking/src/lib.rs:
crates/blocking/src/blockers.rs:
crates/blocking/src/candidate.rs:
crates/blocking/src/keys.rs:
crates/blocking/src/quality.rs:
