/root/repo/target/debug/deps/zeroer_blocking-e0441f1f07496d88.d: crates/blocking/src/lib.rs crates/blocking/src/blockers.rs crates/blocking/src/candidate.rs crates/blocking/src/keys.rs crates/blocking/src/quality.rs Cargo.toml

/root/repo/target/debug/deps/libzeroer_blocking-e0441f1f07496d88.rmeta: crates/blocking/src/lib.rs crates/blocking/src/blockers.rs crates/blocking/src/candidate.rs crates/blocking/src/keys.rs crates/blocking/src/quality.rs Cargo.toml

crates/blocking/src/lib.rs:
crates/blocking/src/blockers.rs:
crates/blocking/src/candidate.rs:
crates/blocking/src/keys.rs:
crates/blocking/src/quality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
