/root/repo/target/debug/deps/zeroer_blocking-f0bebc238aeccd1c.d: crates/blocking/src/lib.rs crates/blocking/src/blockers.rs crates/blocking/src/candidate.rs crates/blocking/src/keys.rs crates/blocking/src/quality.rs

/root/repo/target/debug/deps/zeroer_blocking-f0bebc238aeccd1c: crates/blocking/src/lib.rs crates/blocking/src/blockers.rs crates/blocking/src/candidate.rs crates/blocking/src/keys.rs crates/blocking/src/quality.rs

crates/blocking/src/lib.rs:
crates/blocking/src/blockers.rs:
crates/blocking/src/candidate.rs:
crates/blocking/src/keys.rs:
crates/blocking/src/quality.rs:
