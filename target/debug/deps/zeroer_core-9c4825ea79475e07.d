/root/repo/target/debug/deps/zeroer_core-9c4825ea79475e07.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/json.rs crates/core/src/linkage.rs crates/core/src/model.rs crates/core/src/report.rs crates/core/src/snapshot.rs crates/core/src/transitivity.rs Cargo.toml

/root/repo/target/debug/deps/libzeroer_core-9c4825ea79475e07.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/json.rs crates/core/src/linkage.rs crates/core/src/model.rs crates/core/src/report.rs crates/core/src/snapshot.rs crates/core/src/transitivity.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/json.rs:
crates/core/src/linkage.rs:
crates/core/src/model.rs:
crates/core/src/report.rs:
crates/core/src/snapshot.rs:
crates/core/src/transitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
