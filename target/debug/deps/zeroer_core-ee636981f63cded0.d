/root/repo/target/debug/deps/zeroer_core-ee636981f63cded0.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/json.rs crates/core/src/linkage.rs crates/core/src/model.rs crates/core/src/report.rs crates/core/src/snapshot.rs crates/core/src/transitivity.rs

/root/repo/target/debug/deps/libzeroer_core-ee636981f63cded0.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/json.rs crates/core/src/linkage.rs crates/core/src/model.rs crates/core/src/report.rs crates/core/src/snapshot.rs crates/core/src/transitivity.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/json.rs:
crates/core/src/linkage.rs:
crates/core/src/model.rs:
crates/core/src/report.rs:
crates/core/src/snapshot.rs:
crates/core/src/transitivity.rs:
