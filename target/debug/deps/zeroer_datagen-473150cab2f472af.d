/root/repo/target/debug/deps/zeroer_datagen-473150cab2f472af.d: crates/datagen/src/lib.rs crates/datagen/src/dataset.rs crates/datagen/src/entity.rs crates/datagen/src/perturb.rs crates/datagen/src/profiles.rs crates/datagen/src/vocab.rs

/root/repo/target/debug/deps/libzeroer_datagen-473150cab2f472af.rmeta: crates/datagen/src/lib.rs crates/datagen/src/dataset.rs crates/datagen/src/entity.rs crates/datagen/src/perturb.rs crates/datagen/src/profiles.rs crates/datagen/src/vocab.rs

crates/datagen/src/lib.rs:
crates/datagen/src/dataset.rs:
crates/datagen/src/entity.rs:
crates/datagen/src/perturb.rs:
crates/datagen/src/profiles.rs:
crates/datagen/src/vocab.rs:
