/root/repo/target/debug/deps/zeroer_datagen-4d11f5c3b0f7abf4.d: crates/datagen/src/lib.rs crates/datagen/src/dataset.rs crates/datagen/src/entity.rs crates/datagen/src/perturb.rs crates/datagen/src/profiles.rs crates/datagen/src/vocab.rs Cargo.toml

/root/repo/target/debug/deps/libzeroer_datagen-4d11f5c3b0f7abf4.rmeta: crates/datagen/src/lib.rs crates/datagen/src/dataset.rs crates/datagen/src/entity.rs crates/datagen/src/perturb.rs crates/datagen/src/profiles.rs crates/datagen/src/vocab.rs Cargo.toml

crates/datagen/src/lib.rs:
crates/datagen/src/dataset.rs:
crates/datagen/src/entity.rs:
crates/datagen/src/perturb.rs:
crates/datagen/src/profiles.rs:
crates/datagen/src/vocab.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
