/root/repo/target/debug/deps/zeroer_datagen-5350d7c76fe31259.d: crates/datagen/src/lib.rs crates/datagen/src/dataset.rs crates/datagen/src/entity.rs crates/datagen/src/perturb.rs crates/datagen/src/profiles.rs crates/datagen/src/vocab.rs

/root/repo/target/debug/deps/libzeroer_datagen-5350d7c76fe31259.rmeta: crates/datagen/src/lib.rs crates/datagen/src/dataset.rs crates/datagen/src/entity.rs crates/datagen/src/perturb.rs crates/datagen/src/profiles.rs crates/datagen/src/vocab.rs

crates/datagen/src/lib.rs:
crates/datagen/src/dataset.rs:
crates/datagen/src/entity.rs:
crates/datagen/src/perturb.rs:
crates/datagen/src/profiles.rs:
crates/datagen/src/vocab.rs:
