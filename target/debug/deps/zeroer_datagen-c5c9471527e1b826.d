/root/repo/target/debug/deps/zeroer_datagen-c5c9471527e1b826.d: crates/datagen/src/lib.rs crates/datagen/src/dataset.rs crates/datagen/src/entity.rs crates/datagen/src/perturb.rs crates/datagen/src/profiles.rs crates/datagen/src/vocab.rs

/root/repo/target/debug/deps/zeroer_datagen-c5c9471527e1b826: crates/datagen/src/lib.rs crates/datagen/src/dataset.rs crates/datagen/src/entity.rs crates/datagen/src/perturb.rs crates/datagen/src/profiles.rs crates/datagen/src/vocab.rs

crates/datagen/src/lib.rs:
crates/datagen/src/dataset.rs:
crates/datagen/src/entity.rs:
crates/datagen/src/perturb.rs:
crates/datagen/src/profiles.rs:
crates/datagen/src/vocab.rs:
