/root/repo/target/debug/deps/zeroer_datagen-d46a1e3d715ee12c.d: crates/datagen/src/lib.rs crates/datagen/src/dataset.rs crates/datagen/src/entity.rs crates/datagen/src/perturb.rs crates/datagen/src/profiles.rs crates/datagen/src/vocab.rs

/root/repo/target/debug/deps/libzeroer_datagen-d46a1e3d715ee12c.rlib: crates/datagen/src/lib.rs crates/datagen/src/dataset.rs crates/datagen/src/entity.rs crates/datagen/src/perturb.rs crates/datagen/src/profiles.rs crates/datagen/src/vocab.rs

/root/repo/target/debug/deps/libzeroer_datagen-d46a1e3d715ee12c.rmeta: crates/datagen/src/lib.rs crates/datagen/src/dataset.rs crates/datagen/src/entity.rs crates/datagen/src/perturb.rs crates/datagen/src/profiles.rs crates/datagen/src/vocab.rs

crates/datagen/src/lib.rs:
crates/datagen/src/dataset.rs:
crates/datagen/src/entity.rs:
crates/datagen/src/perturb.rs:
crates/datagen/src/profiles.rs:
crates/datagen/src/vocab.rs:
