/root/repo/target/debug/deps/zeroer_eval-0c6a98d32590ee64.d: crates/eval/src/lib.rs crates/eval/src/clusters.rs crates/eval/src/curves.rs crates/eval/src/metrics.rs crates/eval/src/split.rs Cargo.toml

/root/repo/target/debug/deps/libzeroer_eval-0c6a98d32590ee64.rmeta: crates/eval/src/lib.rs crates/eval/src/clusters.rs crates/eval/src/curves.rs crates/eval/src/metrics.rs crates/eval/src/split.rs Cargo.toml

crates/eval/src/lib.rs:
crates/eval/src/clusters.rs:
crates/eval/src/curves.rs:
crates/eval/src/metrics.rs:
crates/eval/src/split.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
