/root/repo/target/debug/deps/zeroer_eval-6b673d0f7122839e.d: crates/eval/src/lib.rs crates/eval/src/clusters.rs crates/eval/src/curves.rs crates/eval/src/metrics.rs crates/eval/src/split.rs

/root/repo/target/debug/deps/zeroer_eval-6b673d0f7122839e: crates/eval/src/lib.rs crates/eval/src/clusters.rs crates/eval/src/curves.rs crates/eval/src/metrics.rs crates/eval/src/split.rs

crates/eval/src/lib.rs:
crates/eval/src/clusters.rs:
crates/eval/src/curves.rs:
crates/eval/src/metrics.rs:
crates/eval/src/split.rs:
