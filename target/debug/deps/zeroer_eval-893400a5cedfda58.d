/root/repo/target/debug/deps/zeroer_eval-893400a5cedfda58.d: crates/eval/src/lib.rs crates/eval/src/clusters.rs crates/eval/src/curves.rs crates/eval/src/metrics.rs crates/eval/src/split.rs

/root/repo/target/debug/deps/libzeroer_eval-893400a5cedfda58.rmeta: crates/eval/src/lib.rs crates/eval/src/clusters.rs crates/eval/src/curves.rs crates/eval/src/metrics.rs crates/eval/src/split.rs

crates/eval/src/lib.rs:
crates/eval/src/clusters.rs:
crates/eval/src/curves.rs:
crates/eval/src/metrics.rs:
crates/eval/src/split.rs:
