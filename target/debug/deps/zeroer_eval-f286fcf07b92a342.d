/root/repo/target/debug/deps/zeroer_eval-f286fcf07b92a342.d: crates/eval/src/lib.rs crates/eval/src/clusters.rs crates/eval/src/curves.rs crates/eval/src/metrics.rs crates/eval/src/split.rs

/root/repo/target/debug/deps/libzeroer_eval-f286fcf07b92a342.rlib: crates/eval/src/lib.rs crates/eval/src/clusters.rs crates/eval/src/curves.rs crates/eval/src/metrics.rs crates/eval/src/split.rs

/root/repo/target/debug/deps/libzeroer_eval-f286fcf07b92a342.rmeta: crates/eval/src/lib.rs crates/eval/src/clusters.rs crates/eval/src/curves.rs crates/eval/src/metrics.rs crates/eval/src/split.rs

crates/eval/src/lib.rs:
crates/eval/src/clusters.rs:
crates/eval/src/curves.rs:
crates/eval/src/metrics.rs:
crates/eval/src/split.rs:
