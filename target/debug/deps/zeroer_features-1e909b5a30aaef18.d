/root/repo/target/debug/deps/zeroer_features-1e909b5a30aaef18.d: crates/features/src/lib.rs crates/features/src/cache.rs crates/features/src/generator.rs crates/features/src/registry.rs Cargo.toml

/root/repo/target/debug/deps/libzeroer_features-1e909b5a30aaef18.rmeta: crates/features/src/lib.rs crates/features/src/cache.rs crates/features/src/generator.rs crates/features/src/registry.rs Cargo.toml

crates/features/src/lib.rs:
crates/features/src/cache.rs:
crates/features/src/generator.rs:
crates/features/src/registry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
