/root/repo/target/debug/deps/zeroer_features-27e772017520dae9.d: crates/features/src/lib.rs crates/features/src/cache.rs crates/features/src/generator.rs crates/features/src/registry.rs

/root/repo/target/debug/deps/libzeroer_features-27e772017520dae9.rmeta: crates/features/src/lib.rs crates/features/src/cache.rs crates/features/src/generator.rs crates/features/src/registry.rs

crates/features/src/lib.rs:
crates/features/src/cache.rs:
crates/features/src/generator.rs:
crates/features/src/registry.rs:
