/root/repo/target/debug/deps/zeroer_features-49d426f2eebc6dcf.d: crates/features/src/lib.rs crates/features/src/cache.rs crates/features/src/generator.rs crates/features/src/registry.rs

/root/repo/target/debug/deps/libzeroer_features-49d426f2eebc6dcf.rmeta: crates/features/src/lib.rs crates/features/src/cache.rs crates/features/src/generator.rs crates/features/src/registry.rs

crates/features/src/lib.rs:
crates/features/src/cache.rs:
crates/features/src/generator.rs:
crates/features/src/registry.rs:
