/root/repo/target/debug/deps/zeroer_features-85d32b3ba6167775.d: crates/features/src/lib.rs crates/features/src/cache.rs crates/features/src/generator.rs crates/features/src/registry.rs

/root/repo/target/debug/deps/zeroer_features-85d32b3ba6167775: crates/features/src/lib.rs crates/features/src/cache.rs crates/features/src/generator.rs crates/features/src/registry.rs

crates/features/src/lib.rs:
crates/features/src/cache.rs:
crates/features/src/generator.rs:
crates/features/src/registry.rs:
