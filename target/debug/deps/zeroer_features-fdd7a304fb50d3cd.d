/root/repo/target/debug/deps/zeroer_features-fdd7a304fb50d3cd.d: crates/features/src/lib.rs crates/features/src/cache.rs crates/features/src/generator.rs crates/features/src/registry.rs

/root/repo/target/debug/deps/libzeroer_features-fdd7a304fb50d3cd.rlib: crates/features/src/lib.rs crates/features/src/cache.rs crates/features/src/generator.rs crates/features/src/registry.rs

/root/repo/target/debug/deps/libzeroer_features-fdd7a304fb50d3cd.rmeta: crates/features/src/lib.rs crates/features/src/cache.rs crates/features/src/generator.rs crates/features/src/registry.rs

crates/features/src/lib.rs:
crates/features/src/cache.rs:
crates/features/src/generator.rs:
crates/features/src/registry.rs:
