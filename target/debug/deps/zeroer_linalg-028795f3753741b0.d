/root/repo/target/debug/deps/zeroer_linalg-028795f3753741b0.d: crates/linalg/src/lib.rs crates/linalg/src/block.rs crates/linalg/src/cholesky.rs crates/linalg/src/gaussian.rs crates/linalg/src/matrix.rs crates/linalg/src/stats.rs

/root/repo/target/debug/deps/zeroer_linalg-028795f3753741b0: crates/linalg/src/lib.rs crates/linalg/src/block.rs crates/linalg/src/cholesky.rs crates/linalg/src/gaussian.rs crates/linalg/src/matrix.rs crates/linalg/src/stats.rs

crates/linalg/src/lib.rs:
crates/linalg/src/block.rs:
crates/linalg/src/cholesky.rs:
crates/linalg/src/gaussian.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/stats.rs:
