/root/repo/target/debug/deps/zeroer_linalg-18cd2f86dbe5f6de.d: crates/linalg/src/lib.rs crates/linalg/src/block.rs crates/linalg/src/cholesky.rs crates/linalg/src/gaussian.rs crates/linalg/src/matrix.rs crates/linalg/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libzeroer_linalg-18cd2f86dbe5f6de.rmeta: crates/linalg/src/lib.rs crates/linalg/src/block.rs crates/linalg/src/cholesky.rs crates/linalg/src/gaussian.rs crates/linalg/src/matrix.rs crates/linalg/src/stats.rs Cargo.toml

crates/linalg/src/lib.rs:
crates/linalg/src/block.rs:
crates/linalg/src/cholesky.rs:
crates/linalg/src/gaussian.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
