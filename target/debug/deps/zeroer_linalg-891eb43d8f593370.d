/root/repo/target/debug/deps/zeroer_linalg-891eb43d8f593370.d: crates/linalg/src/lib.rs crates/linalg/src/block.rs crates/linalg/src/cholesky.rs crates/linalg/src/gaussian.rs crates/linalg/src/matrix.rs crates/linalg/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libzeroer_linalg-891eb43d8f593370.rmeta: crates/linalg/src/lib.rs crates/linalg/src/block.rs crates/linalg/src/cholesky.rs crates/linalg/src/gaussian.rs crates/linalg/src/matrix.rs crates/linalg/src/stats.rs Cargo.toml

crates/linalg/src/lib.rs:
crates/linalg/src/block.rs:
crates/linalg/src/cholesky.rs:
crates/linalg/src/gaussian.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
