/root/repo/target/debug/deps/zeroer_linalg-936cf93b2bc7da00.d: crates/linalg/src/lib.rs crates/linalg/src/block.rs crates/linalg/src/cholesky.rs crates/linalg/src/gaussian.rs crates/linalg/src/matrix.rs crates/linalg/src/stats.rs

/root/repo/target/debug/deps/libzeroer_linalg-936cf93b2bc7da00.rmeta: crates/linalg/src/lib.rs crates/linalg/src/block.rs crates/linalg/src/cholesky.rs crates/linalg/src/gaussian.rs crates/linalg/src/matrix.rs crates/linalg/src/stats.rs

crates/linalg/src/lib.rs:
crates/linalg/src/block.rs:
crates/linalg/src/cholesky.rs:
crates/linalg/src/gaussian.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/stats.rs:
