/root/repo/target/debug/deps/zeroer_linalg-a8405acb788c76a4.d: crates/linalg/src/lib.rs crates/linalg/src/block.rs crates/linalg/src/cholesky.rs crates/linalg/src/gaussian.rs crates/linalg/src/matrix.rs crates/linalg/src/stats.rs

/root/repo/target/debug/deps/libzeroer_linalg-a8405acb788c76a4.rmeta: crates/linalg/src/lib.rs crates/linalg/src/block.rs crates/linalg/src/cholesky.rs crates/linalg/src/gaussian.rs crates/linalg/src/matrix.rs crates/linalg/src/stats.rs

crates/linalg/src/lib.rs:
crates/linalg/src/block.rs:
crates/linalg/src/cholesky.rs:
crates/linalg/src/gaussian.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/stats.rs:
