/root/repo/target/debug/deps/zeroer_linalg-beec79cff8d7709b.d: crates/linalg/src/lib.rs crates/linalg/src/block.rs crates/linalg/src/cholesky.rs crates/linalg/src/gaussian.rs crates/linalg/src/matrix.rs crates/linalg/src/stats.rs

/root/repo/target/debug/deps/libzeroer_linalg-beec79cff8d7709b.rlib: crates/linalg/src/lib.rs crates/linalg/src/block.rs crates/linalg/src/cholesky.rs crates/linalg/src/gaussian.rs crates/linalg/src/matrix.rs crates/linalg/src/stats.rs

/root/repo/target/debug/deps/libzeroer_linalg-beec79cff8d7709b.rmeta: crates/linalg/src/lib.rs crates/linalg/src/block.rs crates/linalg/src/cholesky.rs crates/linalg/src/gaussian.rs crates/linalg/src/matrix.rs crates/linalg/src/stats.rs

crates/linalg/src/lib.rs:
crates/linalg/src/block.rs:
crates/linalg/src/cholesky.rs:
crates/linalg/src/gaussian.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/stats.rs:
