/root/repo/target/debug/deps/zeroer_stream-198ba4d478f462e2.d: crates/stream/src/lib.rs crates/stream/src/index.rs crates/stream/src/pipeline.rs crates/stream/src/snapshot.rs crates/stream/src/store.rs

/root/repo/target/debug/deps/zeroer_stream-198ba4d478f462e2: crates/stream/src/lib.rs crates/stream/src/index.rs crates/stream/src/pipeline.rs crates/stream/src/snapshot.rs crates/stream/src/store.rs

crates/stream/src/lib.rs:
crates/stream/src/index.rs:
crates/stream/src/pipeline.rs:
crates/stream/src/snapshot.rs:
crates/stream/src/store.rs:
