/root/repo/target/debug/deps/zeroer_stream-1f071091e5fa813f.d: crates/stream/src/lib.rs crates/stream/src/index.rs crates/stream/src/pipeline.rs crates/stream/src/snapshot.rs crates/stream/src/store.rs

/root/repo/target/debug/deps/libzeroer_stream-1f071091e5fa813f.rmeta: crates/stream/src/lib.rs crates/stream/src/index.rs crates/stream/src/pipeline.rs crates/stream/src/snapshot.rs crates/stream/src/store.rs

crates/stream/src/lib.rs:
crates/stream/src/index.rs:
crates/stream/src/pipeline.rs:
crates/stream/src/snapshot.rs:
crates/stream/src/store.rs:
