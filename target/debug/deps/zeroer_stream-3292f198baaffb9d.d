/root/repo/target/debug/deps/zeroer_stream-3292f198baaffb9d.d: crates/stream/src/lib.rs crates/stream/src/index.rs crates/stream/src/pipeline.rs crates/stream/src/snapshot.rs crates/stream/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libzeroer_stream-3292f198baaffb9d.rmeta: crates/stream/src/lib.rs crates/stream/src/index.rs crates/stream/src/pipeline.rs crates/stream/src/snapshot.rs crates/stream/src/store.rs Cargo.toml

crates/stream/src/lib.rs:
crates/stream/src/index.rs:
crates/stream/src/pipeline.rs:
crates/stream/src/snapshot.rs:
crates/stream/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
