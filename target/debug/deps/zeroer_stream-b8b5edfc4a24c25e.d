/root/repo/target/debug/deps/zeroer_stream-b8b5edfc4a24c25e.d: crates/stream/src/lib.rs crates/stream/src/index.rs crates/stream/src/pipeline.rs crates/stream/src/snapshot.rs crates/stream/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libzeroer_stream-b8b5edfc4a24c25e.rmeta: crates/stream/src/lib.rs crates/stream/src/index.rs crates/stream/src/pipeline.rs crates/stream/src/snapshot.rs crates/stream/src/store.rs Cargo.toml

crates/stream/src/lib.rs:
crates/stream/src/index.rs:
crates/stream/src/pipeline.rs:
crates/stream/src/snapshot.rs:
crates/stream/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
