/root/repo/target/debug/deps/zeroer_tabular-640d8e72b0cc4625.d: crates/tabular/src/lib.rs crates/tabular/src/csv.rs crates/tabular/src/schema.rs crates/tabular/src/table.rs crates/tabular/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libzeroer_tabular-640d8e72b0cc4625.rmeta: crates/tabular/src/lib.rs crates/tabular/src/csv.rs crates/tabular/src/schema.rs crates/tabular/src/table.rs crates/tabular/src/value.rs Cargo.toml

crates/tabular/src/lib.rs:
crates/tabular/src/csv.rs:
crates/tabular/src/schema.rs:
crates/tabular/src/table.rs:
crates/tabular/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
