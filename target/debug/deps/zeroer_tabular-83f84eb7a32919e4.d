/root/repo/target/debug/deps/zeroer_tabular-83f84eb7a32919e4.d: crates/tabular/src/lib.rs crates/tabular/src/csv.rs crates/tabular/src/schema.rs crates/tabular/src/table.rs crates/tabular/src/value.rs

/root/repo/target/debug/deps/zeroer_tabular-83f84eb7a32919e4: crates/tabular/src/lib.rs crates/tabular/src/csv.rs crates/tabular/src/schema.rs crates/tabular/src/table.rs crates/tabular/src/value.rs

crates/tabular/src/lib.rs:
crates/tabular/src/csv.rs:
crates/tabular/src/schema.rs:
crates/tabular/src/table.rs:
crates/tabular/src/value.rs:
