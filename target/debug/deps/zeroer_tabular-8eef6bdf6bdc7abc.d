/root/repo/target/debug/deps/zeroer_tabular-8eef6bdf6bdc7abc.d: crates/tabular/src/lib.rs crates/tabular/src/csv.rs crates/tabular/src/schema.rs crates/tabular/src/table.rs crates/tabular/src/value.rs

/root/repo/target/debug/deps/libzeroer_tabular-8eef6bdf6bdc7abc.rmeta: crates/tabular/src/lib.rs crates/tabular/src/csv.rs crates/tabular/src/schema.rs crates/tabular/src/table.rs crates/tabular/src/value.rs

crates/tabular/src/lib.rs:
crates/tabular/src/csv.rs:
crates/tabular/src/schema.rs:
crates/tabular/src/table.rs:
crates/tabular/src/value.rs:
