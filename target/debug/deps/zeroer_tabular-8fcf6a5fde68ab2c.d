/root/repo/target/debug/deps/zeroer_tabular-8fcf6a5fde68ab2c.d: crates/tabular/src/lib.rs crates/tabular/src/csv.rs crates/tabular/src/schema.rs crates/tabular/src/table.rs crates/tabular/src/value.rs

/root/repo/target/debug/deps/libzeroer_tabular-8fcf6a5fde68ab2c.rlib: crates/tabular/src/lib.rs crates/tabular/src/csv.rs crates/tabular/src/schema.rs crates/tabular/src/table.rs crates/tabular/src/value.rs

/root/repo/target/debug/deps/libzeroer_tabular-8fcf6a5fde68ab2c.rmeta: crates/tabular/src/lib.rs crates/tabular/src/csv.rs crates/tabular/src/schema.rs crates/tabular/src/table.rs crates/tabular/src/value.rs

crates/tabular/src/lib.rs:
crates/tabular/src/csv.rs:
crates/tabular/src/schema.rs:
crates/tabular/src/table.rs:
crates/tabular/src/value.rs:
