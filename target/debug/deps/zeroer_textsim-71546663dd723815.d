/root/repo/target/debug/deps/zeroer_textsim-71546663dd723815.d: crates/textsim/src/lib.rs crates/textsim/src/align.rs crates/textsim/src/edit.rs crates/textsim/src/numeric.rs crates/textsim/src/tfidf.rs crates/textsim/src/token.rs crates/textsim/src/tokenize.rs

/root/repo/target/debug/deps/zeroer_textsim-71546663dd723815: crates/textsim/src/lib.rs crates/textsim/src/align.rs crates/textsim/src/edit.rs crates/textsim/src/numeric.rs crates/textsim/src/tfidf.rs crates/textsim/src/token.rs crates/textsim/src/tokenize.rs

crates/textsim/src/lib.rs:
crates/textsim/src/align.rs:
crates/textsim/src/edit.rs:
crates/textsim/src/numeric.rs:
crates/textsim/src/tfidf.rs:
crates/textsim/src/token.rs:
crates/textsim/src/tokenize.rs:
