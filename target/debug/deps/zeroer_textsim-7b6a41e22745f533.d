/root/repo/target/debug/deps/zeroer_textsim-7b6a41e22745f533.d: crates/textsim/src/lib.rs crates/textsim/src/align.rs crates/textsim/src/edit.rs crates/textsim/src/numeric.rs crates/textsim/src/tfidf.rs crates/textsim/src/token.rs crates/textsim/src/tokenize.rs

/root/repo/target/debug/deps/libzeroer_textsim-7b6a41e22745f533.rmeta: crates/textsim/src/lib.rs crates/textsim/src/align.rs crates/textsim/src/edit.rs crates/textsim/src/numeric.rs crates/textsim/src/tfidf.rs crates/textsim/src/token.rs crates/textsim/src/tokenize.rs

crates/textsim/src/lib.rs:
crates/textsim/src/align.rs:
crates/textsim/src/edit.rs:
crates/textsim/src/numeric.rs:
crates/textsim/src/tfidf.rs:
crates/textsim/src/token.rs:
crates/textsim/src/tokenize.rs:
