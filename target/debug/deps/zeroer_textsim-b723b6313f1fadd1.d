/root/repo/target/debug/deps/zeroer_textsim-b723b6313f1fadd1.d: crates/textsim/src/lib.rs crates/textsim/src/align.rs crates/textsim/src/edit.rs crates/textsim/src/numeric.rs crates/textsim/src/tfidf.rs crates/textsim/src/token.rs crates/textsim/src/tokenize.rs Cargo.toml

/root/repo/target/debug/deps/libzeroer_textsim-b723b6313f1fadd1.rmeta: crates/textsim/src/lib.rs crates/textsim/src/align.rs crates/textsim/src/edit.rs crates/textsim/src/numeric.rs crates/textsim/src/tfidf.rs crates/textsim/src/token.rs crates/textsim/src/tokenize.rs Cargo.toml

crates/textsim/src/lib.rs:
crates/textsim/src/align.rs:
crates/textsim/src/edit.rs:
crates/textsim/src/numeric.rs:
crates/textsim/src/tfidf.rs:
crates/textsim/src/token.rs:
crates/textsim/src/tokenize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
