/root/repo/target/debug/examples/dedup_restaurants-3d78d55979c8c891.d: examples/dedup_restaurants.rs

/root/repo/target/debug/examples/dedup_restaurants-3d78d55979c8c891: examples/dedup_restaurants.rs

examples/dedup_restaurants.rs:
