/root/repo/target/debug/examples/dedup_restaurants-70f288c9cb4fc69f.d: examples/dedup_restaurants.rs Cargo.toml

/root/repo/target/debug/examples/libdedup_restaurants-70f288c9cb4fc69f.rmeta: examples/dedup_restaurants.rs Cargo.toml

examples/dedup_restaurants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
