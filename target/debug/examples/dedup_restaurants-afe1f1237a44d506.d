/root/repo/target/debug/examples/dedup_restaurants-afe1f1237a44d506.d: examples/dedup_restaurants.rs

/root/repo/target/debug/examples/libdedup_restaurants-afe1f1237a44d506.rmeta: examples/dedup_restaurants.rs

examples/dedup_restaurants.rs:
