/root/repo/target/debug/examples/diagnose_model-199f170439fd3f83.d: examples/diagnose_model.rs

/root/repo/target/debug/examples/libdiagnose_model-199f170439fd3f83.rmeta: examples/diagnose_model.rs

examples/diagnose_model.rs:
