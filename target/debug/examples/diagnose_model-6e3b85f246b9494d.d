/root/repo/target/debug/examples/diagnose_model-6e3b85f246b9494d.d: examples/diagnose_model.rs

/root/repo/target/debug/examples/diagnose_model-6e3b85f246b9494d: examples/diagnose_model.rs

examples/diagnose_model.rs:
