/root/repo/target/debug/examples/diagnose_model-cdb1d63e73f6a28f.d: examples/diagnose_model.rs Cargo.toml

/root/repo/target/debug/examples/libdiagnose_model-cdb1d63e73f6a28f.rmeta: examples/diagnose_model.rs Cargo.toml

examples/diagnose_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
