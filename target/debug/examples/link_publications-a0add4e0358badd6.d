/root/repo/target/debug/examples/link_publications-a0add4e0358badd6.d: examples/link_publications.rs Cargo.toml

/root/repo/target/debug/examples/liblink_publications-a0add4e0358badd6.rmeta: examples/link_publications.rs Cargo.toml

examples/link_publications.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
