/root/repo/target/debug/examples/link_publications-daa4627e5cf8f9fe.d: examples/link_publications.rs

/root/repo/target/debug/examples/liblink_publications-daa4627e5cf8f9fe.rmeta: examples/link_publications.rs

examples/link_publications.rs:
