/root/repo/target/debug/examples/link_publications-f493b2ac4a647513.d: examples/link_publications.rs

/root/repo/target/debug/examples/link_publications-f493b2ac4a647513: examples/link_publications.rs

examples/link_publications.rs:
