/root/repo/target/debug/examples/products_pipeline-0364d69d4cd7ab16.d: examples/products_pipeline.rs

/root/repo/target/debug/examples/products_pipeline-0364d69d4cd7ab16: examples/products_pipeline.rs

examples/products_pipeline.rs:
