/root/repo/target/debug/examples/products_pipeline-7350011a556bd3ea.d: examples/products_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libproducts_pipeline-7350011a556bd3ea.rmeta: examples/products_pipeline.rs Cargo.toml

examples/products_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
