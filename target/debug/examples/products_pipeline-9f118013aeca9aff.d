/root/repo/target/debug/examples/products_pipeline-9f118013aeca9aff.d: examples/products_pipeline.rs

/root/repo/target/debug/examples/libproducts_pipeline-9f118013aeca9aff.rmeta: examples/products_pipeline.rs

examples/products_pipeline.rs:
