/root/repo/target/debug/examples/quickstart-146a3bce642d7c6c.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-146a3bce642d7c6c.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
