/root/repo/target/debug/examples/quickstart-53e9b7706f60bda6.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-53e9b7706f60bda6: examples/quickstart.rs

examples/quickstart.rs:
