/root/repo/target/debug/examples/quickstart-cad68daa3ce5b265.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-cad68daa3ce5b265.rmeta: examples/quickstart.rs

examples/quickstart.rs:
