/root/repo/target/debug/examples/stream_ingest-30ebdbfb3a38ce77.d: examples/stream_ingest.rs

/root/repo/target/debug/examples/stream_ingest-30ebdbfb3a38ce77: examples/stream_ingest.rs

examples/stream_ingest.rs:
