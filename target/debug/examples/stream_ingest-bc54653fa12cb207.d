/root/repo/target/debug/examples/stream_ingest-bc54653fa12cb207.d: examples/stream_ingest.rs

/root/repo/target/debug/examples/libstream_ingest-bc54653fa12cb207.rmeta: examples/stream_ingest.rs

examples/stream_ingest.rs:
