/root/repo/target/debug/examples/stream_ingest-c578372d7c692b24.d: examples/stream_ingest.rs Cargo.toml

/root/repo/target/debug/examples/libstream_ingest-c578372d7c692b24.rmeta: examples/stream_ingest.rs Cargo.toml

examples/stream_ingest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
