/root/repo/target/release/deps/bench_stream-29a337f921bd8d87.d: crates/stream/benches/bench_stream.rs

/root/repo/target/release/deps/bench_stream-29a337f921bd8d87: crates/stream/benches/bench_stream.rs

crates/stream/benches/bench_stream.rs:
