/root/repo/target/release/deps/proptest-cf3d2229c3c902b7.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-cf3d2229c3c902b7.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-cf3d2229c3c902b7.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
