/root/repo/target/release/deps/serde-23994ad39564940c.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-23994ad39564940c.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-23994ad39564940c.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
