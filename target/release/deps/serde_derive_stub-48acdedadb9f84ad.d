/root/repo/target/release/deps/serde_derive_stub-48acdedadb9f84ad.d: vendor/serde-derive-stub/src/lib.rs

/root/repo/target/release/deps/libserde_derive_stub-48acdedadb9f84ad.so: vendor/serde-derive-stub/src/lib.rs

vendor/serde-derive-stub/src/lib.rs:
