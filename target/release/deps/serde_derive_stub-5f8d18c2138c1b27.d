/root/repo/target/release/deps/serde_derive_stub-5f8d18c2138c1b27.d: vendor/serde-derive-stub/src/lib.rs

/root/repo/target/release/deps/libserde_derive_stub-5f8d18c2138c1b27.so: vendor/serde-derive-stub/src/lib.rs

vendor/serde-derive-stub/src/lib.rs:
