/root/repo/target/release/deps/zeroer-305cc5649ba8a066.d: src/bin/zeroer.rs

/root/repo/target/release/deps/zeroer-305cc5649ba8a066: src/bin/zeroer.rs

src/bin/zeroer.rs:
