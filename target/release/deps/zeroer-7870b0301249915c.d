/root/repo/target/release/deps/zeroer-7870b0301249915c.d: src/lib.rs src/pipeline.rs

/root/repo/target/release/deps/libzeroer-7870b0301249915c.rlib: src/lib.rs src/pipeline.rs

/root/repo/target/release/deps/libzeroer-7870b0301249915c.rmeta: src/lib.rs src/pipeline.rs

src/lib.rs:
src/pipeline.rs:
