/root/repo/target/release/deps/zeroer_bench-0c6f0b85e2ab9a23.d: crates/bench/src/lib.rs crates/bench/src/experiment.rs crates/bench/src/matchers.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libzeroer_bench-0c6f0b85e2ab9a23.rlib: crates/bench/src/lib.rs crates/bench/src/experiment.rs crates/bench/src/matchers.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libzeroer_bench-0c6f0b85e2ab9a23.rmeta: crates/bench/src/lib.rs crates/bench/src/experiment.rs crates/bench/src/matchers.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiment.rs:
crates/bench/src/matchers.rs:
crates/bench/src/table.rs:
