/root/repo/target/release/deps/zeroer_blocking-28d1f65ce1e7f07e.d: crates/blocking/src/lib.rs crates/blocking/src/blockers.rs crates/blocking/src/candidate.rs crates/blocking/src/keys.rs crates/blocking/src/quality.rs

/root/repo/target/release/deps/libzeroer_blocking-28d1f65ce1e7f07e.rlib: crates/blocking/src/lib.rs crates/blocking/src/blockers.rs crates/blocking/src/candidate.rs crates/blocking/src/keys.rs crates/blocking/src/quality.rs

/root/repo/target/release/deps/libzeroer_blocking-28d1f65ce1e7f07e.rmeta: crates/blocking/src/lib.rs crates/blocking/src/blockers.rs crates/blocking/src/candidate.rs crates/blocking/src/keys.rs crates/blocking/src/quality.rs

crates/blocking/src/lib.rs:
crates/blocking/src/blockers.rs:
crates/blocking/src/candidate.rs:
crates/blocking/src/keys.rs:
crates/blocking/src/quality.rs:
