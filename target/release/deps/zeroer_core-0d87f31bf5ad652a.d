/root/repo/target/release/deps/zeroer_core-0d87f31bf5ad652a.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/json.rs crates/core/src/linkage.rs crates/core/src/model.rs crates/core/src/report.rs crates/core/src/snapshot.rs crates/core/src/transitivity.rs

/root/repo/target/release/deps/libzeroer_core-0d87f31bf5ad652a.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/json.rs crates/core/src/linkage.rs crates/core/src/model.rs crates/core/src/report.rs crates/core/src/snapshot.rs crates/core/src/transitivity.rs

/root/repo/target/release/deps/libzeroer_core-0d87f31bf5ad652a.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/json.rs crates/core/src/linkage.rs crates/core/src/model.rs crates/core/src/report.rs crates/core/src/snapshot.rs crates/core/src/transitivity.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/json.rs:
crates/core/src/linkage.rs:
crates/core/src/model.rs:
crates/core/src/report.rs:
crates/core/src/snapshot.rs:
crates/core/src/transitivity.rs:
