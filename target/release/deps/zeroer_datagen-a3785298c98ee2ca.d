/root/repo/target/release/deps/zeroer_datagen-a3785298c98ee2ca.d: crates/datagen/src/lib.rs crates/datagen/src/dataset.rs crates/datagen/src/entity.rs crates/datagen/src/perturb.rs crates/datagen/src/profiles.rs crates/datagen/src/vocab.rs

/root/repo/target/release/deps/libzeroer_datagen-a3785298c98ee2ca.rlib: crates/datagen/src/lib.rs crates/datagen/src/dataset.rs crates/datagen/src/entity.rs crates/datagen/src/perturb.rs crates/datagen/src/profiles.rs crates/datagen/src/vocab.rs

/root/repo/target/release/deps/libzeroer_datagen-a3785298c98ee2ca.rmeta: crates/datagen/src/lib.rs crates/datagen/src/dataset.rs crates/datagen/src/entity.rs crates/datagen/src/perturb.rs crates/datagen/src/profiles.rs crates/datagen/src/vocab.rs

crates/datagen/src/lib.rs:
crates/datagen/src/dataset.rs:
crates/datagen/src/entity.rs:
crates/datagen/src/perturb.rs:
crates/datagen/src/profiles.rs:
crates/datagen/src/vocab.rs:
