/root/repo/target/release/deps/zeroer_eval-beb3563037e70a57.d: crates/eval/src/lib.rs crates/eval/src/clusters.rs crates/eval/src/curves.rs crates/eval/src/metrics.rs crates/eval/src/split.rs

/root/repo/target/release/deps/libzeroer_eval-beb3563037e70a57.rlib: crates/eval/src/lib.rs crates/eval/src/clusters.rs crates/eval/src/curves.rs crates/eval/src/metrics.rs crates/eval/src/split.rs

/root/repo/target/release/deps/libzeroer_eval-beb3563037e70a57.rmeta: crates/eval/src/lib.rs crates/eval/src/clusters.rs crates/eval/src/curves.rs crates/eval/src/metrics.rs crates/eval/src/split.rs

crates/eval/src/lib.rs:
crates/eval/src/clusters.rs:
crates/eval/src/curves.rs:
crates/eval/src/metrics.rs:
crates/eval/src/split.rs:
