/root/repo/target/release/deps/zeroer_features-cb656d197102d82f.d: crates/features/src/lib.rs crates/features/src/cache.rs crates/features/src/generator.rs crates/features/src/registry.rs

/root/repo/target/release/deps/libzeroer_features-cb656d197102d82f.rlib: crates/features/src/lib.rs crates/features/src/cache.rs crates/features/src/generator.rs crates/features/src/registry.rs

/root/repo/target/release/deps/libzeroer_features-cb656d197102d82f.rmeta: crates/features/src/lib.rs crates/features/src/cache.rs crates/features/src/generator.rs crates/features/src/registry.rs

crates/features/src/lib.rs:
crates/features/src/cache.rs:
crates/features/src/generator.rs:
crates/features/src/registry.rs:
