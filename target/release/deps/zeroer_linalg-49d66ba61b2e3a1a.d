/root/repo/target/release/deps/zeroer_linalg-49d66ba61b2e3a1a.d: crates/linalg/src/lib.rs crates/linalg/src/block.rs crates/linalg/src/cholesky.rs crates/linalg/src/gaussian.rs crates/linalg/src/matrix.rs crates/linalg/src/stats.rs

/root/repo/target/release/deps/libzeroer_linalg-49d66ba61b2e3a1a.rlib: crates/linalg/src/lib.rs crates/linalg/src/block.rs crates/linalg/src/cholesky.rs crates/linalg/src/gaussian.rs crates/linalg/src/matrix.rs crates/linalg/src/stats.rs

/root/repo/target/release/deps/libzeroer_linalg-49d66ba61b2e3a1a.rmeta: crates/linalg/src/lib.rs crates/linalg/src/block.rs crates/linalg/src/cholesky.rs crates/linalg/src/gaussian.rs crates/linalg/src/matrix.rs crates/linalg/src/stats.rs

crates/linalg/src/lib.rs:
crates/linalg/src/block.rs:
crates/linalg/src/cholesky.rs:
crates/linalg/src/gaussian.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/stats.rs:
