/root/repo/target/release/deps/zeroer_stream-29274284fe46f1e6.d: crates/stream/src/lib.rs crates/stream/src/index.rs crates/stream/src/pipeline.rs crates/stream/src/snapshot.rs crates/stream/src/store.rs

/root/repo/target/release/deps/zeroer_stream-29274284fe46f1e6: crates/stream/src/lib.rs crates/stream/src/index.rs crates/stream/src/pipeline.rs crates/stream/src/snapshot.rs crates/stream/src/store.rs

crates/stream/src/lib.rs:
crates/stream/src/index.rs:
crates/stream/src/pipeline.rs:
crates/stream/src/snapshot.rs:
crates/stream/src/store.rs:
