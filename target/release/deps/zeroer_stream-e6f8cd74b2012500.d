/root/repo/target/release/deps/zeroer_stream-e6f8cd74b2012500.d: crates/stream/src/lib.rs crates/stream/src/index.rs crates/stream/src/pipeline.rs crates/stream/src/snapshot.rs crates/stream/src/store.rs

/root/repo/target/release/deps/libzeroer_stream-e6f8cd74b2012500.rlib: crates/stream/src/lib.rs crates/stream/src/index.rs crates/stream/src/pipeline.rs crates/stream/src/snapshot.rs crates/stream/src/store.rs

/root/repo/target/release/deps/libzeroer_stream-e6f8cd74b2012500.rmeta: crates/stream/src/lib.rs crates/stream/src/index.rs crates/stream/src/pipeline.rs crates/stream/src/snapshot.rs crates/stream/src/store.rs

crates/stream/src/lib.rs:
crates/stream/src/index.rs:
crates/stream/src/pipeline.rs:
crates/stream/src/snapshot.rs:
crates/stream/src/store.rs:
