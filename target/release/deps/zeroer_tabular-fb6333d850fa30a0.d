/root/repo/target/release/deps/zeroer_tabular-fb6333d850fa30a0.d: crates/tabular/src/lib.rs crates/tabular/src/csv.rs crates/tabular/src/schema.rs crates/tabular/src/table.rs crates/tabular/src/value.rs

/root/repo/target/release/deps/libzeroer_tabular-fb6333d850fa30a0.rlib: crates/tabular/src/lib.rs crates/tabular/src/csv.rs crates/tabular/src/schema.rs crates/tabular/src/table.rs crates/tabular/src/value.rs

/root/repo/target/release/deps/libzeroer_tabular-fb6333d850fa30a0.rmeta: crates/tabular/src/lib.rs crates/tabular/src/csv.rs crates/tabular/src/schema.rs crates/tabular/src/table.rs crates/tabular/src/value.rs

crates/tabular/src/lib.rs:
crates/tabular/src/csv.rs:
crates/tabular/src/schema.rs:
crates/tabular/src/table.rs:
crates/tabular/src/value.rs:
