/root/repo/target/release/deps/zeroer_textsim-21db6c8cc095eea1.d: crates/textsim/src/lib.rs crates/textsim/src/align.rs crates/textsim/src/edit.rs crates/textsim/src/numeric.rs crates/textsim/src/tfidf.rs crates/textsim/src/token.rs crates/textsim/src/tokenize.rs

/root/repo/target/release/deps/libzeroer_textsim-21db6c8cc095eea1.rlib: crates/textsim/src/lib.rs crates/textsim/src/align.rs crates/textsim/src/edit.rs crates/textsim/src/numeric.rs crates/textsim/src/tfidf.rs crates/textsim/src/token.rs crates/textsim/src/tokenize.rs

/root/repo/target/release/deps/libzeroer_textsim-21db6c8cc095eea1.rmeta: crates/textsim/src/lib.rs crates/textsim/src/align.rs crates/textsim/src/edit.rs crates/textsim/src/numeric.rs crates/textsim/src/tfidf.rs crates/textsim/src/token.rs crates/textsim/src/tokenize.rs

crates/textsim/src/lib.rs:
crates/textsim/src/align.rs:
crates/textsim/src/edit.rs:
crates/textsim/src/numeric.rs:
crates/textsim/src/tfidf.rs:
crates/textsim/src/token.rs:
crates/textsim/src/tokenize.rs:
