/root/repo/target/release/examples/stream_ingest-48f0594ee6b33cad.d: examples/stream_ingest.rs

/root/repo/target/release/examples/stream_ingest-48f0594ee6b33cad: examples/stream_ingest.rs

examples/stream_ingest.rs:
