/root/repo/target/release/libserde.rlib: /root/repo/vendor/serde/src/lib.rs /root/repo/vendor/serde-derive-stub/src/lib.rs
