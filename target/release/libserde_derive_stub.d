/root/repo/target/release/libserde_derive_stub.so: /root/repo/vendor/serde-derive-stub/src/lib.rs
