//! Integration tests for the `zeroer` CLI binary.

use std::process::Command;

fn zeroer_bin() -> &'static str {
    env!("CARGO_BIN_EXE_zeroer")
}

fn write_tmp(name: &str, content: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("zeroer-cli-test-{name}-{}", std::process::id()));
    std::fs::write(&path, content).expect("write temp CSV");
    path
}

const LEFT: &str = "title,year\n\
    efficient query processing systems,2014\n\
    adaptive learning frameworks,2016\n\
    graph mining at scale,2012\n\
    distributed storage engines,2018\n";

const RIGHT: &str = "title,year\n\
    efficient query procesing systems,2014\n\
    completely unrelated survey,2015\n\
    graph mining at scale,2012\n\
    distributed storage engine,2018\n";

#[test]
fn match_command_emits_expected_pairs() {
    let l = write_tmp("l1", LEFT);
    let r = write_tmp("r1", RIGHT);
    let out = Command::new(zeroer_bin())
        .args(["match", l.to_str().unwrap(), r.to_str().unwrap()])
        .output()
        .expect("spawn zeroer");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("left_id,right_id,probability"));
    assert!(stdout.contains("0,0,"), "typo'd title must match: {stdout}");
    assert!(stdout.contains("2,2,"), "exact title must match: {stdout}");
    assert!(
        !stdout.contains("1,1,"),
        "unrelated rows must not match: {stdout}"
    );
}

#[test]
fn threshold_flag_filters_output() {
    let l = write_tmp("l2", LEFT);
    let r = write_tmp("r2", RIGHT);
    let out = Command::new(zeroer_bin())
        .args([
            "match",
            l.to_str().unwrap(),
            r.to_str().unwrap(),
            "--threshold",
            "1.1",
        ])
        .output()
        .expect("spawn zeroer");
    assert!(
        !out.status.success(),
        "threshold outside [0,1] must be rejected"
    );
}

#[test]
fn out_flag_writes_file() {
    let l = write_tmp("l3", LEFT);
    let r = write_tmp("r3", RIGHT);
    let dst = std::env::temp_dir().join(format!("zeroer-out-{}.csv", std::process::id()));
    let out = Command::new(zeroer_bin())
        .args([
            "match",
            l.to_str().unwrap(),
            r.to_str().unwrap(),
            "--out",
            dst.to_str().unwrap(),
        ])
        .output()
        .expect("spawn zeroer");
    assert!(out.status.success());
    let written = std::fs::read_to_string(&dst).expect("output file written");
    assert!(written.starts_with("left_id,right_id,probability"));
    std::fs::remove_file(dst).ok();
}

#[test]
fn dedup_command_runs() {
    let t = write_tmp(
        "d1",
        "name\nGolden Dragon Palace\nGolden Dragon Palce\nBlue Sky Tavern\nRustic Oak Kitchen\n",
    );
    let out = Command::new(zeroer_bin())
        .args(["dedup", t.to_str().unwrap()])
        .output()
        .expect("spawn zeroer");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("0,1,"),
        "near-duplicate names must pair: {stdout}"
    );
}

#[test]
fn save_model_then_ingest_round_trip() {
    let base = write_tmp(
        "sm1",
        "name,city\n\
         Golden Dragon Palace,new york\n\
         Golden Dragon Palce,new york\n\
         Blue Sky Tavern,austin\n\
         Rustic Oak Kitchen,denver\n\
         Harbor View Bistro,portland\n\
         Smoky Cellar Tavern,chicago\n",
    );
    let stream = write_tmp(
        "sm2",
        "name,city\n\
         Golden Dragon Palace,new york\n\
         Totally Unseen Steakhouse,miami\n",
    );
    let snap = std::env::temp_dir().join(format!("zeroer-snap-{}.json", std::process::id()));

    // Batch path with --save-model.
    let out = Command::new(zeroer_bin())
        .args([
            "dedup",
            base.to_str().unwrap(),
            "--save-model",
            snap.to_str().unwrap(),
        ])
        .output()
        .expect("spawn zeroer dedup");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let snap_text = std::fs::read_to_string(&snap).expect("snapshot written");
    assert!(snap_text.contains("zeroer-pipeline-snapshot"));

    // Streaming path against the frozen snapshot.
    let out = Command::new(zeroer_bin())
        .args([
            "ingest",
            stream.to_str().unwrap(),
            "--model",
            snap.to_str().unwrap(),
            "--base",
            base.to_str().unwrap(),
        ])
        .output()
        .expect("spawn zeroer ingest");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines[0], "record,cluster,best_match,probability");
    assert_eq!(lines.len(), 3, "one line per ingested record: {stdout}");
    assert!(
        !lines[1].ends_with(",,"),
        "the exact duplicate must join an existing entity: {stdout}"
    );
    assert!(
        lines[2].ends_with(",,"),
        "the unseen restaurant must mint a fresh entity: {stdout}"
    );
    std::fs::remove_file(snap).ok();
}

#[test]
fn ingest_base_preserves_batch_decisions() {
    let base = write_tmp(
        "bp1",
        "name,city\n\
         Golden Dragon Palace,new york\n\
         Golden Dragon Palce,new york\n\
         Blue Sky Tavern,austin\n\
         Rustic Oak Kitchen,denver\n\
         Harbor View Bistro,portland\n\
         Smoky Cellar Tavern,chicago\n",
    );
    let stream = write_tmp(
        "bp2",
        "name,city\n\
         Golden Dragon Palace,new york\n\
         Totally Unseen Steakhouse,miami\n",
    );
    let snap = std::env::temp_dir().join(format!("zeroer-snap-bp-{}.json", std::process::id()));

    let out = Command::new(zeroer_bin())
        .args([
            "dedup",
            base.to_str().unwrap(),
            "--save-model",
            snap.to_str().unwrap(),
        ])
        .output()
        .expect("spawn zeroer dedup");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // "zeroer: N candidates, M duplicate pairs, K clusters"
    let dedup_stderr = String::from_utf8_lossy(&out.stderr).to_string();
    let batch_clusters: usize = dedup_stderr
        .lines()
        .find_map(|l| {
            l.strip_suffix(" clusters")
                .and_then(|rest| rest.rsplit(' ').next())
                .and_then(|n| n.parse().ok())
        })
        .expect("dedup must report a cluster count");

    // The snapshot must carry the bootstrap decisions.
    let snap_text = std::fs::read_to_string(&snap).expect("snapshot written");
    assert!(
        snap_text.contains("\"bootstrap\""),
        "snapshot must persist bootstrap decisions"
    );

    let out = Command::new(zeroer_bin())
        .args([
            "ingest",
            stream.to_str().unwrap(),
            "--model",
            snap.to_str().unwrap(),
            "--base",
            base.to_str().unwrap(),
            "--threads",
            "2",
        ])
        .output()
        .expect("spawn zeroer ingest");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("preserved batch decisions"),
        "base records must replay batch decisions, not re-score: {stderr}"
    );
    let preserved_clusters: usize = stderr
        .lines()
        .find(|l| l.contains("preserved batch decisions"))
        .and_then(|l| {
            l.split('(')
                .nth(1)
                .and_then(|tail| tail.split(' ').next())
                .and_then(|n| n.parse().ok())
        })
        .expect("ingest must report the preserved cluster count");
    assert_eq!(
        preserved_clusters, batch_clusters,
        "replayed base clustering must equal the batch dedup clustering"
    );

    // The exact duplicate joins an existing (batch-decided) cluster; the
    // unseen record mints a fresh entity.
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines[0], "record,cluster,best_match,probability");
    assert!(!lines[1].ends_with(",,"), "{stdout}");
    assert!(lines[2].ends_with(",,"), "{stdout}");
    std::fs::remove_file(snap).ok();
}

#[test]
fn retract_then_compact_round_trip_through_the_snapshot() {
    let base = write_tmp(
        "rc1",
        "name,city\n\
         Golden Dragon Palace,new york\n\
         Golden Dragon Palce,new york\n\
         Blue Sky Tavern,austin\n\
         Rustic Oak Kitchen,denver\n\
         Harbor View Bistro,portland\n\
         Smoky Cellar Tavern,chicago\n",
    );
    let ids = write_tmp("rc-ids", "1\n3 # retired listing\n\n");
    let snap = std::env::temp_dir().join(format!("zeroer-snap-rc-{}.json", std::process::id()));

    let out = Command::new(zeroer_bin())
        .args([
            "dedup",
            base.to_str().unwrap(),
            "--save-model",
            snap.to_str().unwrap(),
        ])
        .output()
        .expect("spawn zeroer dedup");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Retract 2 of 6 base records (≥ 30 % of the store); tombstones
    // persist back into the snapshot.
    let out = Command::new(zeroer_bin())
        .args([
            "retract",
            "--ids",
            ids.to_str().unwrap(),
            "--model",
            snap.to_str().unwrap(),
            "--base",
            base.to_str().unwrap(),
        ])
        .output()
        .expect("spawn zeroer retract");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("retracted 2 records"), "{stderr}");
    assert!(
        stderr.contains("snapshot with 2 tombstones written"),
        "{stderr}"
    );
    let snap_text = std::fs::read_to_string(&snap).expect("snapshot rewritten");
    assert!(
        snap_text.contains("\"retraction\""),
        "tombstones must be persisted"
    );

    // Compact: reclaimed bytes > 0, and --stats shows zero dead
    // postings / zero retired buckets afterwards.
    let out = Command::new(zeroer_bin())
        .args([
            "compact",
            "--model",
            snap.to_str().unwrap(),
            "--base",
            base.to_str().unwrap(),
            "--stats",
        ])
        .output()
        .expect("spawn zeroer compact");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    let reclaimed: usize = stderr
        .lines()
        .find_map(|l| {
            l.strip_prefix("zeroer: compaction reclaimed ")
                .and_then(|rest| rest.split(' ').next())
                .and_then(|n| n.parse().ok())
        })
        .expect("compact must report reclaimed bytes");
    assert!(reclaimed > 0, "reclaimed bytes must be positive: {stderr}");
    // ", 0 dead)" is an exact token — a regressed "10 dead)" or
    // "20 dead)" must not satisfy it — and both legs must report it.
    let legs_line = stderr
        .lines()
        .find(|l| l.contains("blocking legs:"))
        .expect("--stats must print the blocking-legs line");
    assert_eq!(
        legs_line.matches(", 0 dead)").count(),
        2,
        "stats after compact must show zero dead postings on both legs: {legs_line}"
    );
    assert_eq!(
        legs_line.matches(" 0 retired buckets").count(),
        2,
        "stats after compact must show zero retired buckets on both legs: {legs_line}"
    );
    assert!(
        stderr.contains("2 retracted records"),
        "tombstones survive compaction: {stderr}"
    );

    // The compacted snapshot still serves ingest, with the retracted
    // near-duplicate (record 1) gone: an exact copy of record 0 still
    // joins record 0's entity.
    let stream = write_tmp(
        "rc2",
        "name,city\n\
         Golden Dragon Palace,new york\n",
    );
    let out = Command::new(zeroer_bin())
        .args([
            "ingest",
            stream.to_str().unwrap(),
            "--model",
            snap.to_str().unwrap(),
            "--base",
            base.to_str().unwrap(),
        ])
        .output()
        .expect("spawn zeroer ingest");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert!(
        lines[1].starts_with("6,") && !lines[1].ends_with(",,"),
        "the duplicate must still match a live record: {stdout}"
    );
    std::fs::remove_file(snap).ok();
}

#[test]
fn retract_flag_validation() {
    // --ids is retract-only.
    let out = Command::new(zeroer_bin())
        .args(["dedup", "t.csv", "--ids", "x.txt"])
        .output()
        .expect("spawn zeroer");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("only supported by the `retract`"));

    // retract requires --ids, --model and --base.
    let out = Command::new(zeroer_bin())
        .args(["retract", "--model", "m.json", "--base", "b.csv"])
        .output()
        .expect("spawn zeroer");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("requires --ids"));

    let out = Command::new(zeroer_bin())
        .args(["retract", "--ids", "x.txt", "--model", "m.json"])
        .output()
        .expect("spawn zeroer");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("requires --base"));

    // compact takes no positional files.
    let out = Command::new(zeroer_bin())
        .args(["compact", "t.csv", "--model", "m.json", "--base", "b.csv"])
        .output()
        .expect("spawn zeroer");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no positional files"));
}

#[test]
fn retract_rejects_bad_ids_cleanly() {
    let base = write_tmp(
        "ri1",
        "name,city\n\
         Golden Dragon Palace,new york\n\
         Golden Dragon Palce,new york\n\
         Blue Sky Tavern,austin\n\
         Rustic Oak Kitchen,denver\n\
         Harbor View Bistro,portland\n\
         Smoky Cellar Tavern,chicago\n",
    );
    let snap = std::env::temp_dir().join(format!("zeroer-snap-ri-{}.json", std::process::id()));
    let out = Command::new(zeroer_bin())
        .args([
            "dedup",
            base.to_str().unwrap(),
            "--save-model",
            snap.to_str().unwrap(),
        ])
        .output()
        .expect("spawn zeroer dedup");
    assert!(out.status.success());

    // An out-of-range index fails with a clear message and does not
    // rewrite the snapshot.
    let before = std::fs::read_to_string(&snap).unwrap();
    let ids = write_tmp("ri-ids", "42\n");
    let out = Command::new(zeroer_bin())
        .args([
            "retract",
            "--ids",
            ids.to_str().unwrap(),
            "--model",
            snap.to_str().unwrap(),
            "--base",
            base.to_str().unwrap(),
        ])
        .output()
        .expect("spawn zeroer retract");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown record index"));
    assert_eq!(
        std::fs::read_to_string(&snap).unwrap(),
        before,
        "a failed retraction must not rewrite the snapshot"
    );

    // A non-numeric ids file is rejected with file/line context.
    let ids = write_tmp("ri-ids2", "banana\n");
    let out = Command::new(zeroer_bin())
        .args([
            "retract",
            "--ids",
            ids.to_str().unwrap(),
            "--model",
            snap.to_str().unwrap(),
            "--base",
            base.to_str().unwrap(),
        ])
        .output()
        .expect("spawn zeroer retract");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("is not a record index"));
    std::fs::remove_file(snap).ok();
}

#[test]
fn threads_flag_is_ingest_only_and_validated() {
    let out = Command::new(zeroer_bin())
        .args(["match", "a.csv", "b.csv", "--threads", "4"])
        .output()
        .expect("spawn zeroer");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("only supported by the `ingest`"));

    let out = Command::new(zeroer_bin())
        .args(["ingest", "s.csv", "--model", "m.json", "--threads", "0"])
        .output()
        .expect("spawn zeroer");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--threads must be at least 1"));
}

#[test]
fn ingest_requires_model_flag() {
    let stream = write_tmp("sm3", "name\nwhatever\n");
    let out = Command::new(zeroer_bin())
        .args(["ingest", stream.to_str().unwrap()])
        .output()
        .expect("spawn zeroer");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--model"));
}

#[test]
fn save_model_is_dedup_only() {
    let out = Command::new(zeroer_bin())
        .args(["match", "a.csv", "b.csv", "--save-model", "x.json"])
        .output()
        .expect("spawn zeroer");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("only supported on the `dedup`"));
}

#[test]
fn unknown_flag_is_an_error_with_usage() {
    let out = Command::new(zeroer_bin())
        .args(["match", "a.csv", "b.csv", "--bogus"])
        .output()
        .expect("spawn zeroer");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag"));
    assert!(stderr.contains("USAGE"));
}

#[test]
fn missing_file_reports_cleanly() {
    let out = Command::new(zeroer_bin())
        .args(["match", "/nonexistent/a.csv", "/nonexistent/b.csv"])
        .output()
        .expect("spawn zeroer");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn block_on_validates_attribute_names() {
    let l = write_tmp("l4", LEFT);
    let r = write_tmp("r4", RIGHT);
    let out = Command::new(zeroer_bin())
        .args([
            "match",
            l.to_str().unwrap(),
            r.to_str().unwrap(),
            "--block-on",
            "ghost_column",
        ])
        .output()
        .expect("spawn zeroer");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no attribute named"));
}

#[test]
fn stats_flag_prints_observability_and_is_rejected_on_match() {
    let base = write_tmp(
        "st1",
        "name,city\n\
         Golden Dragon Palace,new york\n\
         Golden Dragon Palce,new york\n\
         Blue Sky Tavern,austin\n\
         Rustic Oak Kitchen,denver\n\
         Harbor View Bistro,portland\n\
         Smoky Cellar Tavern,chicago\n",
    );
    let snap = std::env::temp_dir().join(format!("zeroer-stats-snap-{}.json", std::process::id()));

    // dedup --stats: derivation observability on the batch path.
    let out = Command::new(zeroer_bin())
        .args([
            "dedup",
            base.to_str().unwrap(),
            "--stats",
            "--save-model",
            snap.to_str().unwrap(),
        ])
        .output()
        .expect("spawn zeroer dedup --stats");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("distinct tokens interned"),
        "dedup --stats must report interner stats: {stderr}"
    );
    assert!(
        stderr.contains("candidate pairs generated"),
        "dedup --stats must report candidate counts: {stderr}"
    );

    // ingest --stats: interner plus per-leg bucket counts.
    let stream = write_tmp(
        "st2",
        "name,city\n\
         Golden Dragon Palace,new york\n\
         Totally Unseen Steakhouse,miami\n",
    );
    let out = Command::new(zeroer_bin())
        .args([
            "ingest",
            stream.to_str().unwrap(),
            "--model",
            snap.to_str().unwrap(),
            "--base",
            base.to_str().unwrap(),
            "--stats",
        ])
        .output()
        .expect("spawn zeroer ingest --stats");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("distinct tokens interned"),
        "ingest --stats must report interner stats: {stderr}"
    );
    assert!(
        stderr.contains("blocking legs: token"),
        "ingest --stats must report per-leg bucket counts: {stderr}"
    );
    assert!(
        stderr.contains("candidate pairs generated"),
        "ingest --stats must report candidate counts: {stderr}"
    );

    // match has no streaming index or persistent derivation: rejected.
    let l = write_tmp("st3", LEFT);
    let r = write_tmp("st4", RIGHT);
    let out = Command::new(zeroer_bin())
        .args(["match", l.to_str().unwrap(), r.to_str().unwrap(), "--stats"])
        .output()
        .expect("spawn zeroer match --stats");
    assert!(!out.status.success(), "--stats is dedup/ingest-only");
    assert!(String::from_utf8_lossy(&out.stderr).contains("only supported by the `dedup`"));
}

#[test]
fn link_save_model_then_side_ingest_round_trip() {
    let left = write_tmp(
        "lk-l",
        "name,city\n\
         Golden Dragon Palace,new york\n\
         Blue Sky Tavern,austin\n\
         Rustic Oak Kitchen,denver\n\
         Harbor View Bistro,portland\n\
         Smoky Cellar Tavern,chicago\n",
    );
    let right = write_tmp(
        "lk-r",
        "name,city\n\
         Golden Dragon Palce,new york\n\
         Rustic Oak Kitchn,denver\n\
         Totally Unrelated Bistro,miami\n\
         Smoky Cellar Tavern,chicago\n",
    );
    let stream = write_tmp(
        "lk-s",
        "name,city\n\
         Golden Dragon Palace,new york\n\
         Totally Unseen Steakhouse,reno\n",
    );
    let snap = std::env::temp_dir().join(format!("zeroer-link-{}.json", std::process::id()));

    // `link` requires --save-model.
    let out = Command::new(zeroer_bin())
        .args(["link", left.to_str().unwrap(), right.to_str().unwrap()])
        .output()
        .expect("spawn zeroer link");
    assert!(!out.status.success(), "link without --save-model must fail");
    assert!(String::from_utf8_lossy(&out.stderr).contains("--save-model"));

    // Batch linkage + freeze.
    let out = Command::new(zeroer_bin())
        .args([
            "link",
            left.to_str().unwrap(),
            right.to_str().unwrap(),
            "--save-model",
            snap.to_str().unwrap(),
        ])
        .output()
        .expect("spawn zeroer link --save-model");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("left_id,right_id,probability"));
    assert!(stdout.contains("0,0,"), "Golden Dragon must link: {stdout}");
    assert!(stdout.contains("2,1,"), "Rustic Oak must link: {stdout}");
    let snap_text = std::fs::read_to_string(&snap).expect("snapshot written");
    assert!(snap_text.contains("zeroer-link-snapshot"));
    assert!(
        snap_text.contains("zeroer-linkage-snapshot"),
        "the three-model core snapshot is embedded"
    );

    // Streaming right-side ingest against the frozen linkage snapshot,
    // with --stats observability.
    let out = Command::new(zeroer_bin())
        .args([
            "ingest",
            stream.to_str().unwrap(),
            "--model",
            snap.to_str().unwrap(),
            "--side",
            "right",
            "--base-left",
            left.to_str().unwrap(),
            "--base-right",
            right.to_str().unwrap(),
            "--stats",
        ])
        .output()
        .expect("spawn zeroer ingest --side right");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines[0], "record,cluster,best_match,probability");
    assert_eq!(lines.len(), 3, "one line per streamed record: {stdout}");
    assert!(
        !lines[1].ends_with(",,"),
        "the Golden Dragon twin must link across tables: {stdout}"
    );
    assert!(
        lines[2].ends_with(",,"),
        "the unseen steakhouse must mint a fresh entity: {stdout}"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("preserved batch decisions"),
        "base tables must replay batch decisions: {stderr}"
    );
    assert!(
        stderr.contains("distinct tokens interned"),
        "--stats must report interner stats: {stderr}"
    );
    assert!(
        stderr.contains("blocking legs: token"),
        "--stats must report per-leg bucket counts: {stderr}"
    );
    std::fs::remove_file(snap).ok();
}

#[test]
fn metrics_flag_dumps_schema_valid_json_on_batch_and_streaming_paths() {
    use zeroer::core::json::Json;

    let base = write_tmp(
        "mx1",
        "name,city\n\
         Golden Dragon Palace,new york\n\
         Golden Dragon Palce,new york\n\
         Blue Sky Tavern,austin\n\
         Rustic Oak Kitchen,denver\n\
         Harbor View Bistro,portland\n\
         Smoky Cellar Tavern,chicago\n",
    );
    let stream = write_tmp(
        "mx2",
        "name,city\n\
         Golden Dragon Palace,new york\n\
         Totally Unseen Steakhouse,miami\n",
    );
    let pid = std::process::id();
    let snap = std::env::temp_dir().join(format!("zeroer-mx-snap-{pid}.json"));
    let m_dedup = std::env::temp_dir().join(format!("zeroer-mx-dedup-{pid}.json"));
    let m_ingest = std::env::temp_dir().join(format!("zeroer-mx-ingest-{pid}.json"));

    // Round-trip helper: the metrics dump (written by zeroer-obs's own
    // JSON writer) must parse with the workspace's JSON reader.
    let load = |path: &std::path::Path| -> Json {
        let text = std::fs::read_to_string(path).expect("metrics file written");
        let doc = Json::parse(&text).expect("metrics JSON parses");
        assert_eq!(
            doc.get("schema").and_then(|s| s.as_str()),
            Some("zeroer-metrics-v1"),
            "metrics dump must carry its schema identifier"
        );
        doc
    };
    let num = |doc: &Json, section: &str, name: &str| -> f64 {
        doc.get(section)
            .and_then(|s| s.get(name))
            .and_then(|v| v.as_f64())
            .unwrap_or_else(|| panic!("{section}.{name} missing"))
    };
    let hist_field = |doc: &Json, name: &str, field: &str| -> f64 {
        doc.get("histograms")
            .and_then(|s| s.get(name))
            .and_then(|h| h.get(field))
            .and_then(|v| v.as_f64())
            .unwrap_or_else(|| panic!("histograms.{name}.{field} missing"))
    };

    // Batch path: `dedup --metrics` records the batch stage timers.
    let out = Command::new(zeroer_bin())
        .args([
            "dedup",
            base.to_str().unwrap(),
            "--save-model",
            snap.to_str().unwrap(),
            "--metrics",
            m_dedup.to_str().unwrap(),
        ])
        .output()
        .expect("spawn zeroer dedup --metrics");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("metrics written to"),
        "the dump must be announced on stderr"
    );
    let doc = load(&m_dedup);
    assert!(
        num(&doc, "gauges", "derive.interned_tokens") > 0.0,
        "derivation gauges must be published"
    );
    assert!(num(&doc, "gauges", "block.candidate_pairs") > 0.0);
    assert!(
        hist_field(&doc, "stream.bootstrap.ns", "count") >= 1.0
            && hist_field(&doc, "stream.bootstrap.ns", "sum") > 0.0,
        "the save-model path times its bootstrap fit"
    );
    assert!(
        hist_field(&doc, "snapshot.save.ns", "count") >= 1.0,
        "snapshot serialization is timed"
    );

    // Streaming path: `ingest --threads 1 --metrics` must show nonzero
    // per-record stage timings and candidate/record counters.
    let out = Command::new(zeroer_bin())
        .args([
            "ingest",
            stream.to_str().unwrap(),
            "--model",
            snap.to_str().unwrap(),
            "--base",
            base.to_str().unwrap(),
            "--threads",
            "1",
            "--metrics",
            m_ingest.to_str().unwrap(),
        ])
        .output()
        .expect("spawn zeroer ingest --metrics");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = load(&m_ingest);
    for h in [
        "stream.derive.ns",
        "stream.block.ns",
        "stream.score.ns",
        "stream.ingest.ns",
    ] {
        assert!(
            hist_field(&doc, h, "count") > 0.0,
            "{h} must record per-record stage timings"
        );
    }
    assert!(
        hist_field(&doc, "stream.ingest.ns", "sum") > 0.0,
        "stage timings must be nonzero"
    );
    let p50 = hist_field(&doc, "stream.ingest.ns", "p50");
    let min = hist_field(&doc, "stream.ingest.ns", "min");
    let max = hist_field(&doc, "stream.ingest.ns", "max");
    assert!(
        min <= p50 && p50 <= max,
        "percentiles must lie within [min, max]: {min} <= {p50} <= {max}"
    );
    assert!(
        num(&doc, "counters", "stream.candidates") > 0.0,
        "candidate counter must be populated"
    );
    assert!(num(&doc, "counters", "stream.records") > 0.0);
    assert!(
        num(&doc, "gauges", "index.token.live_buckets") > 0.0,
        "streaming index gauges must be published even without --stats"
    );

    for p in [&snap, &m_dedup, &m_ingest] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn side_flag_and_snapshot_kinds_are_cross_checked() {
    let base = write_tmp(
        "xk-b",
        "name,city\n\
         Golden Dragon Palace,new york\n\
         Golden Dragon Palce,new york\n\
         Blue Sky Tavern,austin\n\
         Rustic Oak Kitchen,denver\n\
         Harbor View Bistro,portland\n\
         Smoky Cellar Tavern,chicago\n",
    );
    let stream = write_tmp("xk-s", "name,city\nGolden Dragon Palace,new york\n");
    let snap = std::env::temp_dir().join(format!("zeroer-xk-{}.json", std::process::id()));

    let out = Command::new(zeroer_bin())
        .args([
            "dedup",
            base.to_str().unwrap(),
            "--save-model",
            snap.to_str().unwrap(),
        ])
        .output()
        .expect("spawn zeroer dedup");
    assert!(out.status.success());

    // A dedup snapshot with --side must be rejected with a useful hint.
    let out = Command::new(zeroer_bin())
        .args([
            "ingest",
            stream.to_str().unwrap(),
            "--model",
            snap.to_str().unwrap(),
            "--side",
            "right",
            "--base-left",
            base.to_str().unwrap(),
            "--base-right",
            base.to_str().unwrap(),
        ])
        .output()
        .expect("spawn zeroer ingest --side");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("dedup snapshot"),
        "mismatched snapshot kind needs a clear error"
    );

    // --side without the base tables is rejected up front.
    let out = Command::new(zeroer_bin())
        .args([
            "ingest",
            stream.to_str().unwrap(),
            "--model",
            snap.to_str().unwrap(),
            "--side",
            "left",
        ])
        .output()
        .expect("spawn zeroer ingest --side (no bases)");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--base-left"));

    // Bad --side values are rejected.
    let out = Command::new(zeroer_bin())
        .args([
            "ingest",
            stream.to_str().unwrap(),
            "--model",
            snap.to_str().unwrap(),
            "--side",
            "middle",
        ])
        .output()
        .expect("spawn zeroer ingest --side middle");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("left or right"));
    std::fs::remove_file(snap).ok();
}

/// A scratch directory under the system temp dir, unique per test.
fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("zeroer-gen-test-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn gen_writes_dedup_corpus_with_ground_truth() {
    let dir = tmp_dir("dedup");
    let out = Command::new(zeroer_bin())
        .args([
            "gen",
            "--out",
            dir.to_str().unwrap(),
            "--scale",
            "0.005",
            "--seed",
            "7",
        ])
        .output()
        .expect("spawn zeroer gen");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let corpus = std::fs::read_to_string(dir.join("corpus.csv")).expect("corpus.csv written");
    let truth = std::fs::read_to_string(dir.join("truth.csv")).expect("truth.csv written");
    assert!(corpus.starts_with("name,category,description,quantity,price"));
    assert!(truth.starts_with("record,entity"));
    // 0.005 × 20 000 = 100 records, one truth line per record.
    assert_eq!(corpus.lines().count(), 101);
    assert_eq!(truth.lines().count(), 101);

    // Same seed ⇒ byte-identical output; different seed ⇒ different.
    let dir2 = tmp_dir("dedup2");
    let args = |d: &std::path::Path, seed: &str| {
        vec![
            "gen".to_string(),
            "--out".into(),
            d.to_str().unwrap().into(),
            "--scale".into(),
            "0.005".into(),
            "--seed".into(),
            seed.into(),
        ]
    };
    let out = Command::new(zeroer_bin())
        .args(args(&dir2, "7"))
        .output()
        .expect("spawn zeroer gen (repeat)");
    assert!(out.status.success());
    assert_eq!(
        corpus,
        std::fs::read_to_string(dir2.join("corpus.csv")).unwrap(),
        "same seed must be byte-identical"
    );
    assert_eq!(
        truth,
        std::fs::read_to_string(dir2.join("truth.csv")).unwrap()
    );
    let dir3 = tmp_dir("dedup3");
    let out = Command::new(zeroer_bin())
        .args(args(&dir3, "8"))
        .output()
        .expect("spawn zeroer gen (other seed)");
    assert!(out.status.success());
    assert_ne!(
        corpus,
        std::fs::read_to_string(dir3.join("corpus.csv")).unwrap(),
        "a different seed must change the corpus"
    );
    for d in [dir, dir2, dir3] {
        std::fs::remove_dir_all(d).ok();
    }
}

#[test]
fn gen_linkage_writes_two_tables_and_matches() {
    let dir = tmp_dir("linkage");
    let out = Command::new(zeroer_bin())
        .args([
            "gen",
            "--out",
            dir.to_str().unwrap(),
            "--scale",
            "0.005",
            "--linkage",
            "--dup-rate",
            "0.4",
        ])
        .output()
        .expect("spawn zeroer gen --linkage");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let left = std::fs::read_to_string(dir.join("left.csv")).expect("left.csv written");
    let right = std::fs::read_to_string(dir.join("right.csv")).expect("right.csv written");
    let truth = std::fs::read_to_string(dir.join("truth.csv")).expect("truth.csv written");
    assert!(left.starts_with("name,category,description,quantity,price"));
    assert_eq!(left.lines().count(), 51, "100 records split 50/50");
    assert_eq!(right.lines().count(), 51);
    assert!(truth.starts_with("left,right"));
    // dup-rate 0.4 of 50 right records ⇒ exactly 20 match lines.
    assert_eq!(truth.lines().count(), 21);
    assert!(!std::fs::exists(dir.join("corpus.csv")).unwrap_or(false));
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn gen_rejects_degenerate_specs_without_partial_output() {
    let cases: &[(&str, &str)] = &[
        ("0", "positive"),           // scale zero
        ("-1", "positive"),          // negative scale
        ("0.00001", "at least"),     // rounds below the minimum corpus
        ("abc", "must be a number"), // unparseable
    ];
    for (scale, needle) in cases {
        let dir = tmp_dir(&format!("bad-scale-{scale}"));
        let out = Command::new(zeroer_bin())
            .args(["gen", "--out", dir.to_str().unwrap(), "--scale", scale])
            .output()
            .expect("spawn zeroer gen (bad scale)");
        assert!(!out.status.success(), "scale {scale} must be rejected");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(needle), "scale {scale}: {stderr}");
        assert!(
            !dir.exists(),
            "scale {scale}: no output directory may be created on a failed spec"
        );
    }
    for dup in ["0", "1", "-0.5", "2"] {
        let dir = tmp_dir(&format!("bad-dup-{dup}"));
        let out = Command::new(zeroer_bin())
            .args([
                "gen",
                "--out",
                dir.to_str().unwrap(),
                "--scale",
                "0.005",
                "--dup-rate",
                dup,
            ])
            .output()
            .expect("spawn zeroer gen (bad dup-rate)");
        assert!(!out.status.success(), "dup-rate {dup} must be rejected");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("duplicate rate"),
            "dup-rate {dup} must name the invalid knob"
        );
        assert!(!dir.exists(), "dup-rate {dup}: no partial output");
    }
}

#[test]
fn gen_reports_unwritable_out_dir_cleanly() {
    // A regular file where the output directory should go: create_dir_all
    // fails, and nothing may be left behind.
    let blocker = write_tmp("gen-blocker", "not a directory");
    let out = Command::new(zeroer_bin())
        .args([
            "gen",
            "--out",
            blocker.to_str().unwrap(),
            "--scale",
            "0.005",
        ])
        .output()
        .expect("spawn zeroer gen (blocked out dir)");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cannot create output directory"),
        "stderr: {stderr}"
    );
    assert_eq!(
        std::fs::read_to_string(&blocker).unwrap(),
        "not a directory",
        "the blocking file must be untouched"
    );
    std::fs::remove_file(blocker).ok();

    // Nested variant: a path *under* a regular file.
    let nested = blocker_nested_path();
    let out = Command::new(zeroer_bin())
        .args(["gen", "--out", nested.to_str().unwrap(), "--scale", "0.005"])
        .output()
        .expect("spawn zeroer gen (nested blocked out dir)");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot create output directory"));
}

/// A would-be output path nested under a regular file.
fn blocker_nested_path() -> std::path::PathBuf {
    let file = write_tmp("gen-blocker-parent", "flat file");
    file.join("corpus-out")
}

#[test]
fn gen_flags_are_gen_only_and_validated() {
    // gen flags on other commands are rejected.
    let t = write_tmp("gen-flags", LEFT);
    let out = Command::new(zeroer_bin())
        .args(["dedup", t.to_str().unwrap(), "--scale", "0.1"])
        .output()
        .expect("spawn zeroer dedup --scale");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("only supported by the `gen`"));

    // gen without --out is rejected.
    let out = Command::new(zeroer_bin())
        .args(["gen", "--scale", "0.1"])
        .output()
        .expect("spawn zeroer gen (no out)");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("requires --out"));

    // gen takes no positional files.
    let out = Command::new(zeroer_bin())
        .args(["gen", "stray.csv", "--out", "/tmp/unused-zeroer-gen"])
        .output()
        .expect("spawn zeroer gen stray.csv");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("takes no positional files"));
}
