//! Old-vs-new derivation parity: the regression guard for the interned
//! one-pass derivation layer.
//!
//! The [`reference`] module preserves the *pre-interning* implementation
//! verbatim — string-keyed `HashMap` token bags, string blocking keys,
//! string-keyed inverted-index blocking — and the proptests assert that
//! the interned derivation produces **identical** word/q-gram bags,
//! blocking keys, candidate sets, and feature rows (the latter down to
//! `f64::to_bits`) on generated records.

use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use zeroer::blocking::{standard_candidates_derived, PairMode};
use zeroer::features::{functions_for, DeriveConfig, PairFeaturizer, RowFeaturizer, SimFunction};
use zeroer::tabular::{Record, Schema, Table, Value};
use zeroer::textsim::derive::Deriver;
use zeroer::textsim::{jaro_winkler, Interner, Sym, TokenBag};

/// The retired string-based tokenizers and blockers, kept as the parity
/// reference. This is a line-for-line port of the pre-refactor code.
mod reference {
    use std::collections::HashMap;

    pub fn normalize(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        let mut last_space = true;
        for ch in s.chars() {
            if ch.is_alphanumeric() {
                out.extend(ch.to_lowercase());
                last_space = false;
            } else if !last_space {
                out.push(' ');
                last_space = true;
            }
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out
    }

    pub fn words(s: &str) -> HashMap<String, u32> {
        let mut bag = HashMap::new();
        for t in normalize(s).split(' ').filter(|w| !w.is_empty()) {
            *bag.entry(t.to_string()).or_insert(0) += 1;
        }
        bag
    }

    pub fn qgrams(s: &str, q: usize) -> HashMap<String, u32> {
        assert!(q > 0);
        let norm = normalize(s);
        let mut bag = HashMap::new();
        if norm.is_empty() {
            return bag;
        }
        let pad = "#".repeat(q - 1);
        let padded: Vec<char> = format!("{pad}{norm}{pad}").chars().collect();
        if padded.len() < q {
            bag.insert(padded.iter().collect(), 1);
            return bag;
        }
        for w in padded.windows(q) {
            *bag.entry(w.iter().collect::<String>()).or_insert(0) += 1;
        }
        bag
    }

    pub fn token_keys(s: &str) -> Vec<String> {
        let mut keys: Vec<String> = words(s).into_keys().filter(|t| t.len() > 1).collect();
        keys.sort();
        keys.dedup();
        keys
    }

    pub fn qgram_keys(s: &str, q: usize) -> Vec<String> {
        let mut keys: Vec<String> = qgrams(s, q).into_keys().collect();
        keys.sort();
        keys.dedup();
        keys
    }

    /// The old string-keyed inverted-index join (dedup mode), including
    /// the stop-word bucket guard.
    pub fn join(index: &HashMap<String, Vec<usize>>, max_bucket: usize) -> Vec<(usize, usize)> {
        let mut pairs = std::collections::BTreeSet::new();
        for members in index.values() {
            if members.len() * members.len() > max_bucket * max_bucket {
                continue;
            }
            for &a in members {
                for &b in members {
                    if a < b {
                        pairs.insert((a, b));
                    }
                }
            }
        }
        pairs.into_iter().collect()
    }

    /// The old standard dedup recipe: token ∪ q-gram blocking.
    pub fn standard_dedup_pairs(
        names: &[String],
        q: usize,
        max_bucket: usize,
    ) -> Vec<(usize, usize)> {
        let mut tok: HashMap<String, Vec<usize>> = HashMap::new();
        let mut qgm: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, n) in names.iter().enumerate() {
            for k in token_keys(n) {
                tok.entry(k).or_default().push(i);
            }
            for k in qgram_keys(n, q) {
                qgm.entry(k).or_default().push(i);
            }
        }
        let mut pairs: std::collections::BTreeSet<(usize, usize)> =
            join(&tok, max_bucket).into_iter().collect();
        pairs.extend(join(&qgm, max_bucket));
        pairs.into_iter().collect()
    }
}

/// Renders an interned bag as text → count for comparison.
fn bag_to_map(bag: &TokenBag, interner: &Interner) -> BTreeMap<String, u32> {
    bag.iter()
        .map(|(s, c)| (interner.resolve(s).to_string(), c))
        .collect()
}

fn syms_to_sorted_texts(syms: &[Sym], interner: &Interner) -> Vec<String> {
    let mut v: Vec<String> = syms
        .iter()
        .map(|&s| interner.resolve(s).to_string())
        .collect();
    v.sort();
    v
}

fn to_map(bag: HashMap<String, u32>) -> BTreeMap<String, u32> {
    bag.into_iter().collect()
}

/// Messy attribute text: words, punctuation, unicode, digits.
fn attr_text() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9 ,.!_-]{0,24}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Word and q-gram bags are identical to the string-based reference.
    #[test]
    fn bags_match_reference(s in attr_text(), q in 1usize..6) {
        let mut deriver = Deriver::new(DeriveConfig::blocking(0, q));
        let rec = deriver.derive(&[Value::Str(s.clone())]);
        let it = deriver.interner();
        prop_assert_eq!(
            bag_to_map(&rec.attr(0).word, it),
            to_map(reference::words(&s)),
            "word bags diverge on {:?}", s
        );
        prop_assert_eq!(
            bag_to_map(&rec.attr(0).qgm3, it),
            to_map(reference::qgrams(&s, 3)),
            "3-gram bags diverge on {:?}", s
        );
    }

    /// Blocking keys (token and q-gram) are identical to the reference
    /// extractors.
    #[test]
    fn blocking_keys_match_reference(s in attr_text(), q in 1usize..6) {
        let mut deriver = Deriver::new(DeriveConfig::blocking(0, q));
        let rec = deriver.derive(&[Value::Str(s.clone())]);
        let it = deriver.interner();
        prop_assert_eq!(
            syms_to_sorted_texts(&rec.keys().tokens, it),
            reference::token_keys(&s),
            "token keys diverge on {:?}", s
        );
        prop_assert_eq!(
            syms_to_sorted_texts(&rec.keys().qgrams, it),
            reference::qgram_keys(&s, q),
            "q-gram keys diverge on {:?}", s
        );
    }

    /// The standard dedup candidate set over the derived keys equals the
    /// old string-keyed inverted-index blocking exactly.
    #[test]
    fn candidate_sets_match_reference(
        names in proptest::collection::vec(attr_text(), 16),
        max_bucket in 2usize..12,
    ) {
        let mut deriver = Deriver::new(DeriveConfig::blocking(0, 4));
        let derived: Vec<_> = names
            .iter()
            .map(|n| deriver.derive(&[Value::Str(n.clone())]))
            .collect();
        let got: BTreeSet<(usize, usize)> =
            standard_candidates_derived(&derived, None, PairMode::Dedup, 1, max_bucket)
                .pairs()
                .iter()
                .copied()
                .collect();
        let want: BTreeSet<(usize, usize)> =
            reference::standard_dedup_pairs(&names, 4, max_bucket).into_iter().collect();
        prop_assert_eq!(got, want, "candidate sets diverge on {:?}", names);
    }

    /// Feature rows are bit-identical to rows computed with the
    /// string-based reference bags.
    #[test]
    fn feature_rows_match_reference_bitwise(
        texts in proptest::collection::vec(attr_text(), 6),
        nums in proptest::collection::vec(-1e6f64..1e6, 6),
        null_mask in proptest::collection::vec(0usize..4, 6),
    ) {
        let mut table = Table::new("t", Schema::new(["name", "score"]));
        for (i, s) in texts.iter().enumerate() {
            let v = if null_mask[i] == 0 {
                Value::Null
            } else {
                Value::Float(nums[i])
            };
            table.push(Record::new(i as u32, vec![Value::Str(s.clone()), v]));
        }
        let fz = PairFeaturizer::with_config(&table, &table, DeriveConfig::blocking(0, 4));
        let row_fz = RowFeaturizer::new(fz.attr_types());
        let pairs: Vec<(usize, usize)> = (1..texts.len()).map(|j| (0, j)).collect();
        for &(a, b) in &pairs {
            let got = row_fz.raw_row(
                fz.interner(),
                &fz.left_derived()[a],
                &fz.right_derived()[b],
            );
            let want = reference_row(&table, a, b, fz.attr_types());
            prop_assert_eq!(got.len(), want.len());
            for (col, (g, w)) in got.iter().zip(&want).enumerate() {
                if g.is_nan() && w.is_nan() {
                    continue;
                }
                prop_assert_eq!(
                    g.to_bits(),
                    w.to_bits(),
                    "col {} diverges on pair ({}, {}): {} vs {}", col, a, b, g, w
                );
            }
        }
    }
}

/// One pair's feature row computed entirely from the string-based
/// reference bags (token measures) and the shared sequence/numeric
/// kernels.
fn reference_row(
    table: &Table,
    a: usize,
    b: usize,
    attr_types: &[zeroer::tabular::AttrType],
) -> Vec<f64> {
    let mut out = Vec::new();
    for (attr, &ty) in attr_types.iter().enumerate() {
        let va = table.value(a, attr);
        let vb = table.value(b, attr);
        for &f in functions_for(ty) {
            out.push(reference_sim(f, va, vb));
        }
    }
    out
}

fn set_of(bag: &HashMap<String, u32>) -> BTreeSet<&str> {
    bag.keys().map(String::as_str).collect()
}

fn reference_sim(f: SimFunction, a: &Value, b: &Value) -> f64 {
    if a.is_null() || b.is_null() {
        return f64::NAN;
    }
    let ta = a.as_text().unwrap_or_default();
    let tb = b.as_text().unwrap_or_default();
    let token_sets = |q: Option<usize>| {
        let (ba, bb) = match q {
            Some(q) => (reference::qgrams(&ta, q), reference::qgrams(&tb, q)),
            None => (reference::words(&ta), reference::words(&tb)),
        };
        (ba, bb)
    };
    let set_measure = |q: Option<usize>, f: &dyn Fn(usize, usize, usize) -> f64| {
        let (ba, bb) = token_sets(q);
        if ba.is_empty() && bb.is_empty() {
            return 1.0;
        }
        let (sa, sb) = (set_of(&ba), set_of(&bb));
        let inter = sa.intersection(&sb).count();
        f(inter, sa.len(), sb.len())
    };
    match f {
        SimFunction::JaccardQgm3 => set_measure(Some(3), &|i, na, nb| {
            let union = na + nb - i;
            if union == 0 {
                0.0
            } else {
                i as f64 / union as f64
            }
        }),
        SimFunction::CosineQgm3 => set_measure(Some(3), &|i, na, nb| {
            if na == 0 || nb == 0 {
                0.0
            } else {
                i as f64 / ((na as f64) * (nb as f64)).sqrt()
            }
        }),
        SimFunction::JaccardWord => set_measure(None, &|i, na, nb| {
            let union = na + nb - i;
            if union == 0 {
                0.0
            } else {
                i as f64 / union as f64
            }
        }),
        SimFunction::CosineWord => set_measure(None, &|i, na, nb| {
            if na == 0 || nb == 0 {
                0.0
            } else {
                i as f64 / ((na as f64) * (nb as f64)).sqrt()
            }
        }),
        SimFunction::DiceWord => set_measure(None, &|i, na, nb| {
            if na + nb == 0 {
                0.0
            } else {
                2.0 * i as f64 / (na + nb) as f64
            }
        }),
        SimFunction::OverlapWord => set_measure(None, &|i, na, nb| {
            let min = na.min(nb);
            if min == 0 {
                0.0
            } else {
                i as f64 / min as f64
            }
        }),
        SimFunction::MongeElkan => {
            let (ba, bb) = token_sets(None);
            if ba.is_empty() && bb.is_empty() {
                return 1.0;
            }
            if ba.is_empty() || bb.is_empty() {
                return 0.0;
            }
            // Canonical token-text order — the documented summation
            // order of the interned implementation.
            let toks_a: BTreeSet<&str> = set_of(&ba);
            let toks_b: Vec<&str> = set_of(&bb).into_iter().collect();
            let mut total = 0.0;
            for ta in &toks_a {
                let best = toks_b
                    .iter()
                    .map(|tb| jaro_winkler(ta, tb))
                    .fold(0.0f64, f64::max);
                total += best;
            }
            total / toks_a.len() as f64
        }
        // The sequence/numeric kernels were never touched by the
        // refactor; apply the production code directly. The cached path
        // feeds sequence measures the *lowercased* text form, so the
        // reference must too.
        SimFunction::AbsDiff | SimFunction::RelDiff | SimFunction::ExactMatch => {
            f.apply(a, b).unwrap_or(f64::NAN)
        }
        _ => f.apply_text(&ta.to_lowercase(), &tb.to_lowercase()),
    }
}
