//! End-to-end integration: dataset generation → blocking → features →
//! ZeroER → evaluation, across profiles and against baselines.
//!
//! Scales are kept tiny so the suite stays fast in debug builds; the
//! full-scale numbers live in the bench harnesses.

use zeroer::baselines::common::Classifier;
use zeroer::baselines::{GaussianMixture, KMeans};
use zeroer::blocking::{Blocker, PairMode, QgramBlocker, TokenBlocker, UnionBlocker};
use zeroer::core::{LinkageModel, LinkageTask, ZeroErConfig};
use zeroer::datagen::profiles::{prod_ag, pub_da, rest_fz};
use zeroer::datagen::{generate, GeneratedDataset};
use zeroer::eval::metrics::f_score;
use zeroer::features::PairFeaturizer;

struct Pipeline {
    ds: GeneratedDataset,
    cross: LinkageTask,
    left: LinkageTask,
    right: LinkageTask,
    labels: Vec<bool>,
}

fn run_pipeline(ds: GeneratedDataset, overlap: usize) -> Pipeline {
    let blocker: Box<dyn Blocker + Send + Sync> = if overlap <= 1 {
        Box::new(UnionBlocker::new(vec![
            Box::new(TokenBlocker::new(0)),
            Box::new(QgramBlocker::new(0, 4)),
        ]))
    } else {
        Box::new(TokenBlocker::with_overlap(0, overlap))
    };
    let cross_cs = blocker.candidates(&ds.left, &ds.right, PairMode::Cross);
    let left_cs = blocker.candidates(&ds.left, &ds.left, PairMode::Dedup);
    let right_cs = blocker.candidates(&ds.right, &ds.right, PairMode::Dedup);
    let task = |l, r, cs: &zeroer::blocking::CandidateSet| {
        let fz = PairFeaturizer::new(l, r);
        let mut fs = fz.featurize(cs.pairs());
        fs.normalize();
        LinkageTask::new(fs.matrix, cs.pairs().to_vec(), fs.layout)
    };
    let cross = task(&ds.left, &ds.right, &cross_cs);
    let left = task(&ds.left, &ds.left, &left_cs);
    let right = task(&ds.right, &ds.right, &right_cs);
    let labels = ds.labels_for(cross_cs.pairs());
    Pipeline {
        ds,
        cross,
        left,
        right,
        labels,
    }
}

#[test]
fn zeroer_is_accurate_on_clean_restaurants() {
    let p = run_pipeline(generate(&rest_fz(), 0.25, 1), 1);
    let out = LinkageModel::new(ZeroErConfig::default()).fit(&p.cross, &p.left, &p.right);
    let f1 = f_score(&out.cross_labels, &p.labels);
    assert!(f1 > 0.9, "Rest-FZ end-to-end F1 = {f1}");
}

#[test]
fn zeroer_beats_unsupervised_baselines_on_publications() {
    let p = run_pipeline(generate(&pub_da(), 0.05, 2), 2);
    let out = LinkageModel::new(ZeroErConfig::default()).fit(&p.cross, &p.left, &p.right);
    let zeroer = f_score(&out.cross_labels, &p.labels);

    let mut km = KMeans::standard(1);
    km.fit(&p.cross.features, &[]);
    let km_f1 = f_score(&km.predict(&p.cross.features), &p.labels);

    let mut gmm = GaussianMixture::default();
    gmm.fit(&p.cross.features, &[]);
    let gmm_f1 = f_score(&gmm.predict(&p.cross.features), &p.labels);

    // At this tiny test scale the candidate set can be easy enough for
    // k-means to tie; ZeroER must never be worse and must beat the naive
    // GMM outright.
    assert!(
        zeroer >= km_f1 && zeroer > gmm_f1,
        "ZeroER ({zeroer}) must beat k-means ({km_f1}) and GMM ({gmm_f1})"
    );
    assert!(zeroer > 0.8, "Pub-DA end-to-end F1 = {zeroer}");
}

#[test]
fn hard_products_are_harder_than_clean_restaurants() {
    let restaurants = run_pipeline(generate(&rest_fz(), 0.25, 3), 1);
    let products = run_pipeline(generate(&prod_ag(), 0.05, 3), 1);
    let f_rest = {
        let out = LinkageModel::new(ZeroErConfig::default()).fit(
            &restaurants.cross,
            &restaurants.left,
            &restaurants.right,
        );
        f_score(&out.cross_labels, &restaurants.labels)
    };
    let f_prod = {
        let out = LinkageModel::new(ZeroErConfig::default()).fit(
            &products.cross,
            &products.left,
            &products.right,
        );
        f_score(&out.cross_labels, &products.labels)
    };
    assert!(
        f_rest > f_prod + 0.1,
        "difficulty ordering violated: Rest-FZ {f_rest} vs Prod-AG {f_prod}"
    );
}

#[test]
fn posteriors_are_probabilities_end_to_end() {
    let p = run_pipeline(generate(&rest_fz(), 0.15, 4), 1);
    let out = LinkageModel::new(ZeroErConfig::default()).fit(&p.cross, &p.left, &p.right);
    assert!(out
        .cross_gammas
        .iter()
        .all(|g| (0.0..=1.0).contains(g) && g.is_finite()));
    assert_eq!(out.cross_gammas.len(), p.labels.len());
}

#[test]
fn blocking_keeps_most_matches_on_every_profile() {
    for (profile, overlap) in [(rest_fz(), 1), (pub_da(), 2), (prod_ag(), 1)] {
        let ds = generate(&profile, 0.05, 5);
        let p = run_pipeline(ds, overlap);
        let kept = p.labels.iter().filter(|&&l| l).count();
        let recall = kept as f64 / p.ds.matches.len() as f64;
        assert!(recall > 0.8, "{}: blocking recall {recall}", p.ds.notation);
    }
}
