//! Failure injection: degenerate inputs the full stack must survive.

use zeroer::core::{GenerativeModel, TransitivityCalibrator, ZeroErConfig};
use zeroer::features::PairFeaturizer;
use zeroer::linalg::block::GroupLayout;
use zeroer::linalg::Matrix;
use zeroer::pipeline::{dedup_table, match_tables, MatchOptions};
use zeroer::stream::{PipelineSnapshot, StreamOptions, StreamPipeline};
use zeroer::tabular::csv::read_table;
use zeroer::tabular::{Record, Schema, Table, Value};

#[test]
fn all_identical_features_do_not_crash_em() {
    // Every pair identical: a fully degenerate feature matrix (the
    // worst-case singularity input).
    let x = Matrix::from_vec(50, 4, vec![0.7; 200]);
    let mut m = GenerativeModel::new(ZeroErConfig::default(), GroupLayout::from_sizes(&[2, 2]));
    let summary = m.fit(&x, None);
    assert!(summary.iterations >= 1);
    assert!(m.gammas().iter().all(|g| g.is_finite()));
}

#[test]
fn zero_variance_columns_survive_every_ablation() {
    use zeroer::core::{FeatureDependence, Regularization};
    let mut data = Vec::new();
    for i in 0..60 {
        data.push(if i < 6 { 0.9 } else { 0.1 }); // informative
        data.push(0.5); // constant
        data.push(0.0); // constant at zero
    }
    let x = Matrix::from_vec(60, 3, data);
    for dep in [
        FeatureDependence::Full,
        FeatureDependence::Independent,
        FeatureDependence::Grouped,
    ] {
        for reg in [
            Regularization::None,
            Regularization::Tikhonov,
            Regularization::Adaptive,
        ] {
            let mut m = GenerativeModel::new(
                ZeroErConfig::ablation(dep, reg),
                GroupLayout::from_sizes(&[1, 1, 1]),
            );
            m.fit(&x, None);
            assert!(
                m.gammas().iter().all(|g| g.is_finite()),
                "{dep:?}/{reg:?} produced non-finite posteriors"
            );
        }
    }
}

#[test]
fn all_null_attribute_is_tolerated() {
    let schema = Schema::new(["name", "ghost"]);
    let mut l = Table::new("l", schema.clone());
    let mut r = Table::new("r", schema);
    for i in 0..12u32 {
        l.push(Record::new(
            i,
            vec![format!("item number {i}").into(), Value::Null],
        ));
        r.push(Record::new(
            i,
            vec![format!("item number {i}").into(), Value::Null],
        ));
    }
    let result = match_tables(&l, &r, &MatchOptions::default());
    assert!(!result.pairs.is_empty());
    assert!(result.probabilities.iter().all(|p| p.is_finite()));
}

#[test]
fn single_record_tables_yield_empty_results() {
    let schema = Schema::new(["name"]);
    let mut l = Table::new("l", schema.clone());
    l.push(Record::new(0, vec!["lonely".into()]));
    let result = dedup_table(&l, &MatchOptions::default());
    assert!(result.pairs.is_empty());
    assert!(result.clusters.is_empty());
}

#[test]
fn featurizer_handles_pairs_of_fully_null_records() {
    let schema = Schema::new(["a", "b"]);
    let mut t = Table::new("t", schema);
    t.push(Record::new(0, vec![Value::Null, Value::Null]));
    t.push(Record::new(1, vec!["x".into(), Value::Int(3)]));
    let fz = PairFeaturizer::new(&t, &t);
    let fs = fz.featurize(&[(0, 1), (0, 0)]);
    assert!(
        !fs.matrix.has_non_finite(),
        "imputation must clear all NaNs"
    );
}

#[test]
fn calibrator_with_self_consistent_chain_terminates() {
    // A long chain of overlapping triangles must not oscillate or panic.
    let pairs: Vec<(usize, usize)> = (0..50)
        .map(|i| (i, i + 1))
        .chain((0..49).map(|i| (i, i + 2)))
        .collect();
    let cal = TransitivityCalibrator::new(&pairs);
    let mut gammas = vec![0.9; pairs.len()];
    for _ in 0..5 {
        cal.calibrate(&mut gammas);
    }
    assert!(gammas.iter().all(|g| (0.0..=1.0).contains(g)));
}

#[test]
fn tiny_candidate_sets_fit() {
    // Two pairs is the minimum the mixture can say anything about.
    let x = Matrix::from_rows(&[&[0.9, 0.95], &[0.1, 0.05]]);
    let mut m = GenerativeModel::new(ZeroErConfig::default(), GroupLayout::from_sizes(&[2]));
    m.fit(&x, None);
    let labels = m.labels();
    assert!(
        labels[0] || !labels[1],
        "ordering of the two pairs must be sane"
    );
}

// ---- retraction / compaction failure paths (PR 4) -------------------

fn boot_table() -> Table {
    read_table(
        "boot",
        "name,city\n\
         Golden Dragon Palace,new york\n\
         Golden Dragon Palce,new york\n\
         Blue Sky Tavern,austin\n\
         Rustic Oak Kitchen,denver\n\
         Harbor View Bistro,portland\n\
         Smoky Cellar Tavern,chicago\n",
    )
    .unwrap()
}

fn boot_pipeline() -> StreamPipeline {
    StreamPipeline::bootstrap(&boot_table(), StreamOptions::default())
        .expect("bootstrap fits")
        .0
}

#[test]
fn retract_of_unknown_or_dead_record_fails_without_side_effects() {
    let mut p = boot_pipeline();
    let epoch0 = p.epoch();
    let clusters0 = p.clusters();

    let err = p.retract(p.len()).expect_err("out-of-range index");
    assert!(err.to_string().contains("unknown record index"), "{err}");

    p.retract(2).expect("first retraction");
    let err = p.retract(2).expect_err("double retraction");
    assert!(err.to_string().contains("already retracted"), "{err}");

    // Failed calls leave no trace: one epoch tick, untouched clusters.
    assert_eq!(p.epoch(), epoch0 + 1);
    assert_eq!(p.clusters(), clusters0, "record 2 was a singleton");

    // A poisoned batch rolls back entirely (valid ids included).
    let err = p
        .retract_batch(&[0, 2])
        .expect_err("batch containing a dead record");
    assert!(err.to_string().contains("already retracted"), "{err}");
    assert!(!p.store().is_retracted(0), "valid id must not be applied");
}

#[test]
fn compaction_between_parallel_batches_keeps_thread_parity() {
    // Compaction cannot literally race a batch (`&mut self` serializes
    // them), so the adversarial schedule is compact *between* batches,
    // mid-tombstone, and the guarantee is thread-count parity of the
    // whole schedule.
    let (live, _) = StreamPipeline::bootstrap(&boot_table(), StreamOptions::default()).unwrap();
    let snap = live.snapshot();
    let batch_a: Vec<Record> = boot_table().records().to_vec();
    let batch_b: Vec<Record> = vec![
        Record::new(100, vec!["Golden Dragon Palace".into(), "new york".into()]),
        Record::new(101, vec!["Blue Sky Tavern".into(), "austin".into()]),
        Record::new(
            102,
            vec!["Totally Unseen Steakhouse".into(), "miami".into()],
        ),
    ];

    let run = |threads: usize| {
        let mut p = StreamPipeline::from_snapshot(&snap, 0.5).expect("restores");
        let mut outs = p.ingest_batch_parallel(batch_a.clone(), threads);
        p.retract(0).expect("retract mid-stream");
        p.retract(2).expect("retract mid-stream");
        p.compact();
        outs.extend(p.ingest_batch_parallel(batch_b.clone(), threads));
        (p.clusters(), p.epoch(), outs)
    };
    let (clusters1, epoch1, outs1) = run(1);
    for threads in [2, 4] {
        let (c, e, o) = run(threads);
        assert_eq!(c, clusters1, "threads={threads}");
        assert_eq!(e, epoch1, "threads={threads}");
        assert_eq!(o.len(), outs1.len());
        for (a, b) in outs1.iter().zip(&o) {
            assert_eq!(a.index, b.index, "threads={threads}");
            assert_eq!(a.candidates, b.candidates, "threads={threads}");
            assert_eq!(a.matches, b.matches, "threads={threads}");
            assert_eq!(a.cluster, b.cluster, "threads={threads}");
        }
    }
}

#[test]
fn snapshot_save_load_mid_tombstone_round_trips_exactly() {
    let mut live = boot_pipeline();
    live.retract(1).expect("retract a bootstrap record");
    let snap_text = live.snapshot().to_json();

    let reloaded = PipelineSnapshot::from_json(&snap_text).expect("parses");
    assert_eq!(reloaded.tombstones, vec![1]);
    let mut cold = StreamPipeline::from_snapshot(&reloaded, 0.5).expect("restores");
    cold.seed_base(&boot_table())
        .expect("seeds with tombstones");
    assert_eq!(cold.clusters(), live.clusters());
    assert_eq!(cold.epoch(), live.epoch());
    assert!(cold.store().is_retracted(1));
}

#[test]
fn snapshot_with_streamed_tombstones_fails_cleanly_to_restore() {
    let mut live = boot_pipeline();
    let out = live.ingest(Record::new(
        50,
        vec!["Totally Unseen Steakhouse".into(), "miami".into()],
    ));
    live.retract(out.index).expect("retract a streamed record");
    let snap = live.snapshot();
    assert!(snap.tombstones.contains(&out.index));

    // The streamed record is not persisted, so its retraction cannot be
    // reconstructed: restore must refuse with a real error, not panic or
    // silently drop the tombstone.
    let reparsed = PipelineSnapshot::from_json(&snap.to_json()).expect("format stays parseable");
    let Err(err) = StreamPipeline::from_snapshot(&reparsed, 0.5) else {
        panic!("restore must refuse a snapshot with streamed tombstones");
    };
    assert!(
        err.to_string().contains("cannot be restored"),
        "unexpected error: {err}"
    );
}

#[test]
fn pending_tombstones_block_retraction_until_seeded() {
    let mut live = boot_pipeline();
    live.retract(3).unwrap();
    let snap = live.snapshot();
    let mut cold = StreamPipeline::from_snapshot(&snap, 0.5).expect("restores");
    let err = cold.retract(0).expect_err("tombstones pending");
    assert!(err.to_string().contains("seed_base"), "{err}");
    cold.seed_base(&boot_table()).expect("seeds");
    cold.retract(0).expect("retraction works after seeding");
}
