//! Failure injection: degenerate inputs the full stack must survive.

use zeroer::core::{GenerativeModel, TransitivityCalibrator, ZeroErConfig};
use zeroer::features::PairFeaturizer;
use zeroer::linalg::block::GroupLayout;
use zeroer::linalg::Matrix;
use zeroer::pipeline::{dedup_table, match_tables, MatchOptions};
use zeroer::tabular::{Record, Schema, Table, Value};

#[test]
fn all_identical_features_do_not_crash_em() {
    // Every pair identical: a fully degenerate feature matrix (the
    // worst-case singularity input).
    let x = Matrix::from_vec(50, 4, vec![0.7; 200]);
    let mut m = GenerativeModel::new(ZeroErConfig::default(), GroupLayout::from_sizes(&[2, 2]));
    let summary = m.fit(&x, None);
    assert!(summary.iterations >= 1);
    assert!(m.gammas().iter().all(|g| g.is_finite()));
}

#[test]
fn zero_variance_columns_survive_every_ablation() {
    use zeroer::core::{FeatureDependence, Regularization};
    let mut data = Vec::new();
    for i in 0..60 {
        data.push(if i < 6 { 0.9 } else { 0.1 }); // informative
        data.push(0.5); // constant
        data.push(0.0); // constant at zero
    }
    let x = Matrix::from_vec(60, 3, data);
    for dep in [
        FeatureDependence::Full,
        FeatureDependence::Independent,
        FeatureDependence::Grouped,
    ] {
        for reg in [
            Regularization::None,
            Regularization::Tikhonov,
            Regularization::Adaptive,
        ] {
            let mut m = GenerativeModel::new(
                ZeroErConfig::ablation(dep, reg),
                GroupLayout::from_sizes(&[1, 1, 1]),
            );
            m.fit(&x, None);
            assert!(
                m.gammas().iter().all(|g| g.is_finite()),
                "{dep:?}/{reg:?} produced non-finite posteriors"
            );
        }
    }
}

#[test]
fn all_null_attribute_is_tolerated() {
    let schema = Schema::new(["name", "ghost"]);
    let mut l = Table::new("l", schema.clone());
    let mut r = Table::new("r", schema);
    for i in 0..12u32 {
        l.push(Record::new(
            i,
            vec![format!("item number {i}").into(), Value::Null],
        ));
        r.push(Record::new(
            i,
            vec![format!("item number {i}").into(), Value::Null],
        ));
    }
    let result = match_tables(&l, &r, &MatchOptions::default());
    assert!(!result.pairs.is_empty());
    assert!(result.probabilities.iter().all(|p| p.is_finite()));
}

#[test]
fn single_record_tables_yield_empty_results() {
    let schema = Schema::new(["name"]);
    let mut l = Table::new("l", schema.clone());
    l.push(Record::new(0, vec!["lonely".into()]));
    let result = dedup_table(&l, &MatchOptions::default());
    assert!(result.pairs.is_empty());
    assert!(result.clusters.is_empty());
}

#[test]
fn featurizer_handles_pairs_of_fully_null_records() {
    let schema = Schema::new(["a", "b"]);
    let mut t = Table::new("t", schema);
    t.push(Record::new(0, vec![Value::Null, Value::Null]));
    t.push(Record::new(1, vec!["x".into(), Value::Int(3)]));
    let fz = PairFeaturizer::new(&t, &t);
    let fs = fz.featurize(&[(0, 1), (0, 0)]);
    assert!(
        !fs.matrix.has_non_finite(),
        "imputation must clear all NaNs"
    );
}

#[test]
fn calibrator_with_self_consistent_chain_terminates() {
    // A long chain of overlapping triangles must not oscillate or panic.
    let pairs: Vec<(usize, usize)> = (0..50)
        .map(|i| (i, i + 1))
        .chain((0..49).map(|i| (i, i + 2)))
        .collect();
    let cal = TransitivityCalibrator::new(&pairs);
    let mut gammas = vec![0.9; pairs.len()];
    for _ in 0..5 {
        cal.calibrate(&mut gammas);
    }
    assert!(gammas.iter().all(|g| (0.0..=1.0).contains(g)));
}

#[test]
fn tiny_candidate_sets_fit() {
    // Two pairs is the minimum the mixture can say anything about.
    let x = Matrix::from_rows(&[&[0.9, 0.95], &[0.1, 0.05]]);
    let mut m = GenerativeModel::new(ZeroErConfig::default(), GroupLayout::from_sizes(&[2]));
    m.fit(&x, None);
    let labels = m.labels();
    assert!(
        labels[0] || !labels[1],
        "ordering of the two pairs must be sane"
    );
}
