//! Integration tests pinning the paper's qualitative claims — the
//! properties EXPERIMENTS.md reports, asserted at small scale so CI
//! catches regressions in any layer.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zeroer::core::{
    FeatureDependence, GenerativeModel, Regularization, TransitivityCalibrator, ZeroErConfig,
};
use zeroer::datagen::{generate, profiles::pub_da};
use zeroer::eval::metrics::f_score;
use zeroer::features::PairFeaturizer;
use zeroer::linalg::block::GroupLayout;
use zeroer::linalg::stats::{covariance_to_correlation, weighted_covariance, weighted_mean};
use zeroer::linalg::Matrix;

/// §3.2 / Figure 2: features from the same attribute correlate far more
/// strongly than features from different attributes.
#[test]
fn feature_correlations_band_by_attribute() {
    let ds = generate(&pub_da(), 0.04, 9);
    let fz = PairFeaturizer::new(&ds.left, &ds.right);
    // Use the true match pairs so the match-class correlation is exact.
    let fs = fz.featurize(&ds.matches);
    let x = &fs.matrix;
    let ones = vec![1.0; x.rows()];
    let mean = weighted_mean(x, &ones);
    let corr = covariance_to_correlation(&weighted_covariance(x, &ones, &mean));

    let group_of = |j: usize| {
        fs.layout
            .iter()
            .position(|(off, sz)| j >= off && j < off + sz)
            .expect("column in some group")
    };
    let (mut within, mut across) = ((0.0, 0usize), (0.0, 0usize));
    for i in 0..corr.rows() {
        for j in 0..corr.cols() {
            if i == j {
                continue;
            }
            if group_of(i) == group_of(j) {
                within.0 += corr[(i, j)].abs();
                within.1 += 1;
            } else {
                across.0 += corr[(i, j)].abs();
                across.1 += 1;
            }
        }
    }
    let w = within.0 / within.1 as f64;
    let a = across.0 / across.1 as f64;
    assert!(
        w > 2.0 * a,
        "banding contrast too weak: within {w:.3} vs across {a:.3}"
    );
}

/// §3.3: without regularization a degenerate feature produces a
/// (near-)singular match covariance; adaptive regularization bounds it
/// away from zero by κ(µM−µU)².
#[test]
fn adaptive_regularization_bounds_variances() {
    let mut rng = StdRng::seed_from_u64(4);
    let mut data = Vec::new();
    for i in 0..200 {
        data.push(if i < 20 { 1.0 } else { rng.gen_range(0.0..0.5) });
    }
    let x = Matrix::from_vec(200, 1, data);
    let cfg = ZeroErConfig {
        feature_dependence: FeatureDependence::Independent,
        regularization: Regularization::Adaptive,
        shared_correlation: false,
        transitivity: false,
        ..Default::default()
    };
    let mut m = GenerativeModel::new(cfg, GroupLayout::independent(1));
    m.fit(&x, None);
    let mp = m.m_params().expect("fitted");
    let up = m.u_params().expect("fitted");
    let gap = (mp.mean[0] - up.mean[0]).powi(2);
    let var_m = mp.cov.diag()[0];
    assert!(
        var_m >= 0.15 * gap - 1e-9,
        "adaptive floor violated: var {var_m} < kappa*gap {}",
        0.15 * gap
    );
}

/// §4: correlation sharing must halve the number of per-class covariance
/// parameters learned from match data (d + shared off-diagonals instead
/// of a full matrix per class).
#[test]
fn grouped_layout_reduces_parameters() {
    let grouped = GroupLayout::from_sizes(&[5, 5, 3, 3]);
    let full = GroupLayout::single_group(16);
    let independent = GroupLayout::independent(16);
    assert!(grouped.covariance_params() < full.covariance_params());
    assert!(independent.covariance_params() < grouped.covariance_params());
    // Eq. 9: grouped = Σ |F_i|(|F_i|+1)/2.
    assert_eq!(grouped.covariance_params(), 15 + 15 + 6 + 6);
}

/// §5 / Eq. 16: after calibration no likely-match triangle violates
/// γ12·γ13 ≤ γ23 by more than numerical noise.
#[test]
fn calibration_removes_transitivity_violations() {
    let mut rng = StdRng::seed_from_u64(11);
    // Random graph over 30 nodes.
    let mut pairs = Vec::new();
    for a in 0..30usize {
        for b in (a + 1)..30 {
            if rng.gen_bool(0.3) {
                pairs.push((a, b));
            }
        }
    }
    let cal = TransitivityCalibrator::new(&pairs);
    let mut gammas: Vec<f64> = (0..pairs.len()).map(|_| rng.gen_range(0.0..1.0)).collect();
    let before = cal.count_violations(&gammas);
    // A few sweeps reach a fixed point on this size.
    for _ in 0..10 {
        cal.calibrate(&mut gammas);
    }
    let after = cal.count_violations(&gammas);
    assert!(
        after <= before,
        "calibration increased violations: {before} -> {after}"
    );
    assert_eq!(after, 0, "violations remain after calibration");
}

/// §6: the E/M steps are O(N) — doubling the data roughly doubles the
/// work, never quadruples it (we check the flop proxy via timing would be
/// flaky; instead check that fitting cost grows by iteration count, and
/// that both sizes converge).
#[test]
fn em_converges_at_multiple_scales() {
    for n in [200usize, 800] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let mut data = Vec::new();
        for i in 0..n {
            let base = if i % 20 == 0 { 0.9 } else { 0.1 };
            for _ in 0..4 {
                data.push(base + rng.gen_range(-0.05..0.05));
            }
        }
        let x = Matrix::from_vec(n, 4, data);
        let mut m = GenerativeModel::new(ZeroErConfig::default(), GroupLayout::from_sizes(&[2, 2]));
        let s = m.fit(&x, None);
        assert!(s.converged, "EM did not converge at n = {n}");
    }
}

/// Table 4's headline: the grouped + adaptive system beats the naive
/// full-covariance unregularized variant on realistic data.
#[test]
fn grouped_adaptive_beats_naive_full() {
    let ds = generate(&pub_da(), 0.04, 13);
    let fz = PairFeaturizer::new(&ds.left, &ds.right);
    // Candidate set: true matches + hard negatives sharing title tokens.
    let blocker = zeroer::blocking::TokenBlocker::with_overlap(0, 2);
    use zeroer::blocking::Blocker;
    let cs = blocker.candidates(&ds.left, &ds.right, zeroer::blocking::PairMode::Cross);
    let mut fs = fz.featurize(cs.pairs());
    fs.normalize();
    let labels = ds.labels_for(cs.pairs());

    let fit = |cfg: ZeroErConfig| {
        let mut m = GenerativeModel::new(cfg, fs.layout.clone());
        m.fit(&fs.matrix, None);
        f_score(&m.labels(), &labels)
    };
    let naive = fit(ZeroErConfig::ablation(
        FeatureDependence::Full,
        Regularization::None,
    ));
    let system = fit(ZeroErConfig::gap());
    assert!(
        system > naive,
        "G+A+P ({system}) must beat naive full/none ({naive})"
    );
    assert!(system > 0.8, "G+A+P should be strong on Pub-DA: {system}");
}
