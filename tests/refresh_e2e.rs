//! End-to-end snapshot lifecycle through the real binary: freeze a
//! model with `dedup --save-model`, re-fit it offline with
//! `zeroer refresh`, then start `zeroer serve` and swap the serving
//! model live over the wire with `admin refresh` — resolving before and
//! after to prove the read path keeps answering across the swap.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use zeroer::serve::Client;
use zeroer::tabular::{Record, Value};

fn zeroer_bin() -> &'static str {
    env!("CARGO_BIN_EXE_zeroer")
}

fn write_tmp(name: &str, content: &str) -> std::path::PathBuf {
    let path =
        std::env::temp_dir().join(format!("zeroer-refresh-e2e-{name}-{}", std::process::id()));
    std::fs::write(&path, content).expect("write temp CSV");
    path
}

const BASE: &str = "name,city\n\
    Golden Dragon Palace,new york\n\
    Golden Dragon Palce,new york\n\
    Blue Sky Tavern,austin\n\
    Blue Sky Tavern Inc,austin\n\
    Rustic Oak Kitchen,denver\n\
    Rustic Oak Kitchn,denver\n\
    Harbor View Bistro,portland\n\
    Smoky Cellar Tavern,chicago\n\
    Maple Leaf Diner,toronto\n\
    Cedar Grove Cafe,seattle\n";

/// Kills the child on drop so a failing assertion never leaks a
/// listening server process.
struct Reap(Child);

impl Drop for Reap {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn record(name: &str, city: &str) -> Vec<Value> {
    vec![Value::Str(name.into()), Value::Str(city.into())]
}

#[test]
fn refresh_refits_offline_and_swaps_live_over_the_wire() {
    let base = write_tmp("base", BASE);
    let snap =
        std::env::temp_dir().join(format!("zeroer-refresh-snap-{}.json", std::process::id()));
    let refreshed =
        std::env::temp_dir().join(format!("zeroer-refresh-out-{}.json", std::process::id()));

    let out = Command::new(zeroer_bin())
        .args([
            "dedup",
            base.to_str().unwrap(),
            "--save-model",
            snap.to_str().unwrap(),
        ])
        .output()
        .expect("spawn zeroer dedup");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Offline refresh: re-fit the frozen model on the live base and
    // write the swapped snapshot to a new path.
    let out = Command::new(zeroer_bin())
        .args([
            "refresh",
            "--model",
            snap.to_str().unwrap(),
            "--base",
            base.to_str().unwrap(),
            "--out",
            refreshed.to_str().unwrap(),
        ])
        .output()
        .expect("spawn zeroer refresh");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stderr: {stderr}");
    assert!(
        stderr.contains("model re-fitted"),
        "refresh must report the refit: {stderr}"
    );
    let text = std::fs::read_to_string(&refreshed).expect("refreshed snapshot written");
    assert!(
        text.contains("zeroer-pipeline-snapshot"),
        "refreshed output must be a pipeline snapshot"
    );

    // The refreshed snapshot is itself servable: boot the server from
    // it, then swap again live with `admin refresh`.
    let child = Command::new(zeroer_bin())
        .args([
            "serve",
            "--model",
            refreshed.to_str().unwrap(),
            "--base",
            base.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--threads",
            "2",
        ])
        .stderr(Stdio::piped())
        .stdout(Stdio::null())
        .spawn()
        .expect("spawn zeroer serve");
    let mut child = Reap(child);

    let mut stderr = BufReader::new(child.0.stderr.take().expect("stderr piped"));
    let addr = loop {
        let mut line = String::new();
        assert_ne!(
            stderr.read_line(&mut line).expect("read server stderr"),
            0,
            "server exited before announcing its address"
        );
        if let Some(rest) = line.trim().strip_prefix("zeroer: serving on ") {
            break rest.to_string();
        }
    };
    let mut client = Client::connect(addr.as_str()).expect("connect to served address");

    // Pre-swap: the read path answers.
    let before = client
        .resolve(&record("Golden Dragon Palace", "new york"))
        .expect("resolve before refresh");
    assert!(before.cluster.is_some(), "duplicate must match: {before:?}");

    // The live swap.
    let report = client.admin("refresh").expect("admin refresh");
    assert_eq!(
        report.get("generation").and_then(|v| v.as_usize()),
        Some(1),
        "first refresh must advance to generation 1: {report:?}"
    );
    assert!(
        report
            .get("records")
            .and_then(|v| v.as_usize())
            .unwrap_or(0)
            >= 10,
        "refit must cover the live base: {report:?}"
    );

    // Post-swap: the read path still answers, and writes still apply.
    let after = client
        .resolve(&record("Golden Dragon Palace", "new york"))
        .expect("resolve after refresh");
    assert!(
        after.cluster.is_some(),
        "duplicate must still match after the swap: {after:?}"
    );
    let outcomes = client
        .ingest(&[Record::new(100, record("Golden Dragon Palce", "new york"))])
        .expect("ingest after refresh");
    assert_eq!(outcomes.len(), 1);

    let ack = client.admin("shutdown").expect("shutdown");
    assert_eq!(ack.get("stopping").and_then(|v| v.as_bool()), Some(true));
    let status = child.0.wait().expect("server exits");
    assert!(status.success(), "server exited with {status:?}");

    std::fs::remove_file(snap).ok();
    std::fs::remove_file(refreshed).ok();
    std::fs::remove_file(base).ok();
}
