//! Retraction-equivalence: the PR 4 tentpole guarantee.
//!
//! For arbitrary interleavings of ingest / retract / compact, the final
//! pipeline state must be **semantically identical to a fresh pipeline
//! that only ever ingested the surviving records** — same clusters, same
//! candidate sets for a probe record, and feature rows equal down to
//! `f64::to_bits` — and the whole interleaving must itself be
//! bit-identical across 1/2/4 ingest threads.
//!
//! Record indices differ between the two pipelines (the fresh one never
//! allocates slots for retracted records), so clusters and matches are
//! compared through the monotone index translation `interleaved slot →
//! rank among survivors`.
//!
//! The equivalence is exact because (a) match decisions are pure
//! functions of the two records — never of cluster or index state — and
//! (b) no blocking bucket crosses the frequency cap at this dataset
//! scale (cap-retirement is the one documented divergence: it is
//! history-dependent by design).

use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::OnceLock;
use zeroer::datagen::generate;
use zeroer::datagen::profiles::rest_fz;
use zeroer::features::RowFeaturizer;
use zeroer::stream::{IngestOutcome, PipelineSnapshot, StreamOptions, StreamPipeline};
use zeroer::tabular::{Record, Table};

/// One frozen model + the record stream every case replays. The EM fit
/// runs once per process; the property cases only vary the interleaving.
struct Fixture {
    snap: PipelineSnapshot,
    records: Vec<Record>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let ds = generate(&rest_fz(), 0.25, 42);
        let (table, _) = ds.dedup_table();
        let cut = (table.len() * 6 / 10).max(4);
        let mut boot = Table::new("boot", table.schema().clone());
        for r in table.records().iter().take(cut) {
            boot.push(r.clone());
        }
        let (live, _) =
            StreamPipeline::bootstrap(&boot, StreamOptions::default()).expect("bootstrap fits");
        Fixture {
            snap: live.snapshot(),
            records: table.records().to_vec(),
        }
    })
}

/// One step of an interleaving. Retraction targets are pipeline record
/// indices (== ingest order), decided by the driver so every replay —
/// any thread count, and the survivors-only reference — agrees on what
/// happened.
#[derive(Debug, Clone)]
enum Step {
    Ingest(Vec<Record>),
    Retract(usize),
    Compact,
}

/// Decodes raw op codes into a concrete interleaving plan plus the list
/// of surviving ingest positions (ascending).
fn plan(ops: &[u32], records: &[Record]) -> (Vec<Step>, Vec<usize>) {
    let mut steps = Vec::new();
    let mut queue: Vec<Record> = Vec::new();
    let mut next = 0usize;
    let mut ingested = 0usize;
    let mut live: Vec<usize> = Vec::new();
    for &op in ops {
        match op % 5 {
            0..=2 => {
                // Ingest a small batch (1–8 records) so the parallel
                // path has real work.
                let take = 1 + (op as usize / 5) % 8;
                for _ in 0..take {
                    if next < records.len() {
                        queue.push(records[next].clone());
                        live.push(ingested);
                        ingested += 1;
                        next += 1;
                    }
                }
            }
            3 => {
                if !queue.is_empty() {
                    steps.push(Step::Ingest(std::mem::take(&mut queue)));
                }
                if !live.is_empty() {
                    let victim = live.remove((op as usize / 5) % live.len());
                    steps.push(Step::Retract(victim));
                }
            }
            _ => {
                if !queue.is_empty() {
                    steps.push(Step::Ingest(std::mem::take(&mut queue)));
                }
                steps.push(Step::Compact);
            }
        }
    }
    if !queue.is_empty() {
        steps.push(Step::Ingest(queue));
    }
    (steps, live)
}

/// Replays a plan on a cold pipeline with the given ingest thread count.
fn run_plan(
    snap: &PipelineSnapshot,
    steps: &[Step],
    threads: usize,
) -> (StreamPipeline, Vec<IngestOutcome>) {
    let mut p = StreamPipeline::from_snapshot(snap, StreamOptions::default().threshold)
        .expect("snapshot restores");
    let mut outcomes = Vec::new();
    for step in steps {
        match step {
            Step::Ingest(batch) => {
                outcomes.extend(p.ingest_batch_parallel(batch.clone(), threads));
            }
            Step::Retract(idx) => {
                p.retract(*idx).expect("plan only retracts live records");
            }
            Step::Compact => {
                p.compact();
            }
        }
    }
    (p, outcomes)
}

fn assert_outcomes_identical(a: &[IngestOutcome], b: &[IngestOutcome], threads: usize) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.index, y.index, "threads={threads}");
        assert_eq!(x.candidates, y.candidates, "threads={threads}");
        assert_eq!(x.cluster, y.cluster, "threads={threads}");
        assert_eq!(x.matches.len(), y.matches.len(), "threads={threads}");
        for ((cx, px), (cy, py)) in x.matches.iter().zip(&y.matches) {
            assert_eq!(cx, cy, "threads={threads}");
            assert_eq!(
                px.to_bits(),
                py.to_bits(),
                "threads={threads}: {px} vs {py}"
            );
        }
    }
}

/// The full equivalence check for one interleaving. Returns the number
/// of retractions exercised so callers can assert coverage.
fn check_equivalence(ops: &[u32]) -> usize {
    let fx = fixture();
    let (steps, survivors) = plan(ops, &fx.records);
    let retractions = steps
        .iter()
        .filter(|s| matches!(s, Step::Retract(_)))
        .count();

    // 1. The interleaving is bit-identical at every thread count.
    let (mut p1, out1) = run_plan(&fx.snap, &steps, 1);
    for threads in [2, 4] {
        let (pt, outt) = run_plan(&fx.snap, &steps, threads);
        assert_outcomes_identical(&out1, &outt, threads);
        assert_eq!(p1.clusters(), pt.clusters(), "threads={threads}");
        assert_eq!(p1.epoch(), pt.epoch(), "threads={threads}");
    }

    // 2. A fresh pipeline that only ever saw the survivors.
    let survivor_records: Vec<Record> = {
        let mut ingest_order = Vec::new();
        for step in &steps {
            if let Step::Ingest(batch) = step {
                ingest_order.extend(batch.iter().cloned());
            }
        }
        survivors.iter().map(|&i| ingest_order[i].clone()).collect()
    };
    let mut fresh = StreamPipeline::from_snapshot(&fx.snap, StreamOptions::default().threshold)
        .expect("snapshot restores");
    fresh.ingest_batch(survivor_records);

    // Translate interleaved slots → survivor ranks (monotone, so sorted
    // cluster shapes translate directly).
    let rank: HashMap<usize, usize> = survivors
        .iter()
        .enumerate()
        .map(|(r, &pos)| (pos, r))
        .collect();
    let translated: Vec<Vec<usize>> = p1
        .clusters()
        .iter()
        .map(|c| c.iter().map(|i| rank[i]).collect())
        .collect();
    assert_eq!(
        translated,
        fresh.clusters(),
        "final clusters must equal the never-ingested-the-retracted baseline"
    );
    assert_eq!(p1.store().live_len(), fresh.store().live_len());

    // 3. Feature rows over surviving records are bit-identical even
    // though the two interners hold different symbol spaces.
    let featurizer = RowFeaturizer::new(&fx.snap.attr_types);
    for w in survivors.windows(2).take(5) {
        let (ia, ib) = (w[0], w[1]);
        let (ra, rb) = (rank[&ia], rank[&ib]);
        let row_p = featurizer.raw_row(
            p1.store().interner(),
            p1.store().derived(ia),
            p1.store().derived(ib),
        );
        let row_f = featurizer.raw_row(
            fresh.store().interner(),
            fresh.store().derived(ra),
            fresh.store().derived(rb),
        );
        assert_eq!(row_p.len(), row_f.len());
        for (a, b) in row_p.iter().zip(&row_f) {
            assert!(
                a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan()),
                "feature drift on pair ({ia},{ib}): {a} vs {b}"
            );
        }
    }

    // 4. A probe record sees identical candidates and matches in both
    // worlds (translated through the survivor ranks).
    if let Some(&probe_src) = survivors.first() {
        let mut probe = p1.store().table().records()[probe_src].clone();
        probe.id = 9_000_000;
        let a = p1.ingest(probe.clone());
        let b = fresh.ingest(probe);
        assert_eq!(a.candidates, b.candidates, "probe candidate counts");
        assert_eq!(a.matches.len(), b.matches.len());
        for ((ca, pa), (cb, pb)) in a.matches.iter().zip(&b.matches) {
            assert_eq!(rank[ca], *cb, "probe match identity");
            assert_eq!(pa.to_bits(), pb.to_bits(), "probe posterior bits");
        }
    }
    retractions
}

#[test]
fn fixed_interleaving_with_heavy_retraction_is_equivalent() {
    // Dense hand-picked ops: ingest bursts, interleaved retractions
    // (op%5==3) and compactions (op%5==4).
    let ops: Vec<u32> = vec![
        10, 20, 3, 0, 33, 4, 11, 8, 23, 3, 9, 43, 12, 3, 24, 0, 38, 3, 7, 48, 13, 3, 5, 44, 18, 3,
        6, 28, 3, 14,
    ];
    let retractions = check_equivalence(&ops);
    assert!(retractions >= 5, "the fixed plan must exercise retraction");
}

#[test]
fn retract_everything_leaves_no_clusters() {
    let fx = fixture();
    let records: Vec<Record> = fx.records.iter().take(12).cloned().collect();
    let mut p = StreamPipeline::from_snapshot(&fx.snap, 0.5).expect("snapshot restores");
    p.ingest_batch(records);
    let mut auto_fired = false;
    for i in 0..p.len() {
        auto_fired |= p.retract(i).expect("live record").auto_compaction.is_some();
    }
    assert!(p.clusters().is_empty());
    assert_eq!(p.store().live_len(), 0);
    assert!(
        auto_fired,
        "retracting everything must cross the default dead-fraction watermark"
    );
    let report = p.compact();
    assert_eq!(p.stats().index.postings(), 0, "index fully drained");
    assert_eq!(p.stats().index.dead_postings(), 0);
    assert_eq!(
        report.index.postings_dropped, 0,
        "auto-compaction already reclaimed every dead posting"
    );
}

proptest! {
    // Each case replays four pipelines (threads 1/2/4 + the survivors
    // baseline) against the once-fitted fixture model — no EM per case,
    // so the count can be higher than the bootstrap-heavy suites.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary interleavings of ingest/retract/compact are equivalent
    /// to never having ingested the retracted records, at every tested
    /// thread count.
    #[test]
    fn random_interleavings_are_equivalent(ops in proptest::collection::vec(0u32..1000, 40)) {
        check_equivalence(&ops);
    }
}
