//! End-to-end `zeroer serve` over a real TCP socket: freeze a model
//! with `dedup --save-model`, start the real binary on an ephemeral
//! port, run resolve + ingest + admin round-trips through the protocol
//! client, shut the server down over the wire, and check it exits
//! cleanly with every wire ingest drained into its final report.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use zeroer::serve::Client;
use zeroer::tabular::{Record, Value};

fn zeroer_bin() -> &'static str {
    env!("CARGO_BIN_EXE_zeroer")
}

fn write_tmp(name: &str, content: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("zeroer-serve-e2e-{name}-{}", std::process::id()));
    std::fs::write(&path, content).expect("write temp CSV");
    path
}

const BASE: &str = "name,city\n\
    Golden Dragon Palace,new york\n\
    Golden Dragon Palce,new york\n\
    Blue Sky Tavern,austin\n\
    Rustic Oak Kitchen,denver\n\
    Harbor View Bistro,portland\n\
    Smoky Cellar Tavern,chicago\n";

/// Kills the child on drop so a failing assertion never leaks a
/// listening server process.
struct Reap(Child);

impl Drop for Reap {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn record(name: &str, city: &str) -> Vec<Value> {
    vec![Value::Str(name.into()), Value::Str(city.into())]
}

#[test]
fn serve_round_trip_over_localhost() {
    let base = write_tmp("base", BASE);
    let snap = std::env::temp_dir().join(format!("zeroer-serve-snap-{}.json", std::process::id()));

    let out = Command::new(zeroer_bin())
        .args([
            "dedup",
            base.to_str().unwrap(),
            "--save-model",
            snap.to_str().unwrap(),
        ])
        .output()
        .expect("spawn zeroer dedup");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let child = Command::new(zeroer_bin())
        .args([
            "serve",
            "--model",
            snap.to_str().unwrap(),
            "--base",
            base.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--threads",
            "2",
        ])
        .stderr(Stdio::piped())
        .stdout(Stdio::null())
        .spawn()
        .expect("spawn zeroer serve");
    let mut child = Reap(child);

    // The server prints its bound address to stderr once it's
    // listening; everything before that is startup chatter.
    let mut stderr = BufReader::new(child.0.stderr.take().expect("stderr piped"));
    let addr = loop {
        let mut line = String::new();
        assert_ne!(
            stderr.read_line(&mut line).expect("read server stderr"),
            0,
            "server exited before announcing its address"
        );
        if let Some(rest) = line.trim().strip_prefix("zeroer: serving on ") {
            break rest.to_string();
        }
    };

    let mut client = Client::connect(addr.as_str()).expect("connect to served address");

    // Admin ping.
    let pong = client.admin("ping").expect("ping");
    assert_eq!(pong.get("pong").and_then(|v| v.as_bool()), Some(true));

    // Resolve: a near-duplicate of a base record must match it; a
    // completely unseen restaurant must come back as a new entity.
    let dup = client
        .resolve(&record("Golden Dragon Palace", "new york"))
        .expect("resolve duplicate");
    assert!(
        dup.cluster.is_some(),
        "exact duplicate of a base record must match: {dup:?}"
    );
    assert!(!dup.matches.is_empty());
    let fresh = client
        .resolve(&record("Totally Unseen Steakhouse", "miami"))
        .expect("resolve unseen");
    assert!(
        fresh.cluster.is_none(),
        "unseen restaurant must be a new entity: {fresh:?}"
    );

    // Ingest over the wire, then resolve again: the just-ingested
    // record is now visible on the read path.
    let outcomes = client
        .ingest(&[Record::new(
            100,
            record("Totally Unseen Steakhouse", "miami"),
        )])
        .expect("ingest");
    assert_eq!(outcomes.len(), 1);
    assert!(outcomes[0].new_entity);
    let now_known = client
        .resolve(&record("Totally Unseen Steakhouse", "miami"))
        .expect("resolve after ingest");
    assert_eq!(
        now_known.cluster,
        Some(outcomes[0].cluster),
        "the ingested record must be resolvable afterwards: {now_known:?}"
    );

    // Admin stats: the CLI renderer's exact shape.
    let stats = client.admin("stats").expect("stats");
    let text = stats
        .get("stats")
        .and_then(|v| v.as_str())
        .expect("stats text");
    assert!(
        text.starts_with("zeroer: derivation:"),
        "stats must come from the CLI renderer: {text:?}"
    );
    assert!(text.contains("zeroer: store:"), "{text:?}");

    // Clean shutdown over the wire; the process must exit successfully
    // and report the drained store (base + 1 wire ingest).
    let ack = client.admin("shutdown").expect("shutdown");
    assert_eq!(ack.get("stopping").and_then(|v| v.as_bool()), Some(true));
    let status = child.0.wait().expect("server exits");
    assert!(status.success(), "server exited with {status:?}");
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut stderr, &mut rest).expect("drain stderr");
    assert!(
        rest.contains("server drained (7 records"),
        "drain report must count the wire ingest: {rest:?}"
    );

    std::fs::remove_file(snap).ok();
    std::fs::remove_file(base).ok();
}
