//! Offline stand-in for `criterion`.
//!
//! Provides the macro/type surface the `micro` benchmark target uses —
//! [`Criterion`], benchmark groups, [`Bencher::iter`], [`black_box`],
//! [`BenchmarkId`], [`criterion_group!`], [`criterion_main!`] — with a
//! simple median-of-samples timer instead of criterion's statistical
//! machinery. Good enough to spot order-of-magnitude regressions by eye.

use std::fmt;
use std::time::Instant;

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered from a parameter value.
    pub fn from_parameter<P: fmt::Display>(p: P) -> Self {
        Self {
            label: p.to_string(),
        }
    }

    /// An id with a function name and a parameter.
    pub fn new<P: fmt::Display>(name: &str, p: P) -> Self {
        Self {
            label: format!("{name}/{p}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Runs one benchmark body repeatedly and reports the median sample time.
pub struct Bencher {
    last_ns: Option<f64>,
}

impl Bencher {
    /// Times `f`: one warm-up call, then a handful of timed samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        const SAMPLES: usize = 7;
        let mut times: Vec<f64> = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let start = Instant::now();
            black_box(f());
            times.push(start.elapsed().as_secs_f64() * 1e9);
        }
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        self.last_ns = Some(times[SAMPLES / 2]);
    }
}

fn human(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn run_one(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { last_ns: None };
    f(&mut b);
    match b.last_ns {
        Some(ns) => println!("bench {name:<40} {}", human(ns)),
        None => println!("bench {name:<40} (no iter call)"),
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            prefix: name.to_string(),
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }
}

/// A named group of benchmarks (prefixes every benchmark's label).
pub struct BenchmarkGroup {
    prefix: String,
}

impl BenchmarkGroup {
    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{name}", self.prefix), &mut f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{id}", self.prefix), &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

/// Bundles benchmark functions under one group-runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generates `main` for bench targets with `harness = false`. Under
/// `cargo test` (which passes `--test`) the benchmarks are skipped so the
/// test suite stays fast.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}
