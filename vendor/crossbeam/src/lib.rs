//! Offline stand-in for `crossbeam`, backed by `std::thread::scope`.
//!
//! Only the `crossbeam::thread::scope` API used by the feature generator
//! is provided. Upstream returns `Err` when a spawned thread panics; the
//! std scope re-raises the panic instead, which is an acceptable
//! strengthening for this workspace (callers `.expect()` the result).

/// Scoped threads.
pub mod thread {
    /// A scope handle; `spawn` borrows from the enclosing environment.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope (so it
        /// can spawn further threads), mirroring crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope; all spawned threads are joined before this
    /// returns. Always `Ok` (panics propagate instead of becoming `Err`).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_run_and_join() {
        let counter = AtomicUsize::new(0);
        let data = vec![1usize, 2, 3, 4];
        super::thread::scope(|s| {
            let counter = &counter;
            for &x in &data {
                s.spawn(move |_| {
                    counter.fetch_add(x, Ordering::SeqCst);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let flag = AtomicUsize::new(0);
        super::thread::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    flag.store(42, Ordering::SeqCst);
                });
            });
        })
        .unwrap();
        assert_eq!(flag.load(Ordering::SeqCst), 42);
    }
}
