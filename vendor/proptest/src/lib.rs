//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and
//! string-pattern strategies, [`collection::vec`], the [`proptest!`]
//! macro (with optional `#![proptest_config(...)]`), and
//! `prop_assert!`/`prop_assert_eq!`.
//!
//! Unlike upstream there is no shrinking: a failing case panics with the
//! deterministic case seed in the message, which is enough to reproduce
//! (cases are generated from consecutive seeds).

use rand::rngs::StdRng;
use rand::SampleRange;

#[doc(hidden)]
pub use rand as __rand;

/// Run configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` and samples
    /// the produced strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

impl<T> Strategy for std::ops::Range<T>
where
    std::ops::Range<T>: Clone + SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rand::Rng::gen_range(rng, self.clone())
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    std::ops::RangeInclusive<T>: Clone + SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rand::Rng::gen_range(rng, self.clone())
    }
}

/// String pattern strategy: `&str` literals like `"[a-z0-9 ]{0,12}"`
/// generate matching strings.
///
/// Supported shape: one bracketed character class (literal characters and
/// `x-y` ranges) followed by `{n}` or `{m,n}`. Anything else is treated as
/// a literal string, which covers this workspace's usage.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        match parse_class_pattern(self) {
            Some((chars, lo, hi)) => {
                let len = rand::Rng::gen_range(rng, lo..=hi);
                (0..len)
                    .map(|_| chars[rand::Rng::gen_range(rng, 0..chars.len())])
                    .collect()
            }
            None => (*self).to_string(),
        }
    }
}

/// Parses `[<class>]{m,n}` / `[<class>]{n}` into (alphabet, min, max).
fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let reps = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match reps.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = reps.trim().parse().ok()?;
            (n, n)
        }
    };
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i] as u32, class[i + 2] as u32);
            for c in a..=b {
                chars.push(char::from_u32(c)?);
            }
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    if chars.is_empty() || lo > hi {
        return None;
    }
    Some((chars, lo, hi))
}

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;

    /// Fixed-length `Vec` of values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common imports property tests expect.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Asserts a condition inside a property test (panics on failure, like
/// `assert!` — this stand-in has no shrinking to feed).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn holds(x in 0usize..10, v in collection::vec(0.0f64..1.0, 4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])+ fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block )* ) => {
        $(
            // `#[test]` arrives as one of the passed-through attributes.
            $(#[$meta])+
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases as u64 {
                    // Derive the case seed from the test name so distinct
                    // tests explore distinct streams.
                    let tag: u64 = stringify!($name)
                        .bytes()
                        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                            (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
                        });
                    let mut rng =
                        <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                            tag ^ case,
                        );
                    $( let $arg = $crate::Strategy::generate(&$strat, &mut rng); )*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn class_pattern_parses() {
        let (chars, lo, hi) = super::parse_class_pattern("[a-c0 ]{1,4}").unwrap();
        assert_eq!(chars, vec!['a', 'b', 'c', '0', ' ']);
        assert_eq!((lo, hi), (1, 4));
    }

    #[test]
    fn string_strategy_respects_pattern() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z0-9 ]{0,12}", &mut rng);
            assert!(s.len() <= 12);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == ' '));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_binds_args(x in 2usize..7, v in crate::collection::vec(0.0f64..1.0, 3)) {
            prop_assert!((2..7).contains(&x));
            prop_assert_eq!(v.len(), 3);
            prop_assert!(v.iter().all(|f| (0.0..1.0).contains(f)));
        }

        #[test]
        fn flat_map_chains(m in (1usize..4).prop_flat_map(|n| crate::collection::vec(0usize..10, n))) {
            prop_assert!(!m.is_empty() && m.len() < 4);
        }
    }
}
