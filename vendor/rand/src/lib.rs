//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored crate provides the (small) API subset the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`], [`Rng::gen_bool`] and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — statistically
//! solid for test-data synthesis, deterministic per seed, and *not* a
//! drop-in bit-for-bit replacement for upstream `StdRng` (no consumer in
//! this workspace depends on upstream's exact stream).

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Next raw 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seeding trait (upstream's `SeedableRng`, reduced to the one
/// constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64() as f32
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-domain u64/i64 range: every draw is in range.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                self.start + (self.end - self.start) * rng.next_f64() as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                lo + (hi - lo) * rng.next_f64() as $t
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// The user-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw over the full domain of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        self.next_f64() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            Self {
                s: [
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice utilities (upstream's `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random slice operations.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher-Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&x));
            let y = rng.gen_range(0.0..0.3);
            assert!((0.0..0.3).contains(&y));
            let z = rng.gen_range(5usize..9);
            assert!((5..9).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut v: Vec<usize> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn unit_interval_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
