//! No-op derive macros backing the offline `serde` stand-in.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as metadata
//! (no serde-based serialization is exercised anywhere — the snapshot
//! subsystem hand-rolls its JSON), so the derives expand to nothing.

use proc_macro::TokenStream;

/// Expands to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
