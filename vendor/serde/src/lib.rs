//! Offline stand-in for `serde`.
//!
//! The build environment has no network access to crates.io. The workspace
//! uses `#[derive(Serialize, Deserialize)]` purely as declarative metadata
//! on config/value types — nothing actually serializes through serde (the
//! model-snapshot subsystem hand-rolls its JSON in `zeroer-core`), so the
//! derives are re-exported as no-ops.

pub use serde_derive_stub::{Deserialize, Serialize};
